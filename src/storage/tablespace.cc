#include "storage/tablespace.h"

#include <algorithm>
#include <cctype>

#include "common/crc32c.h"
#include "common/status.h"

namespace htg::storage {

namespace {

// Table names become file names; keep only portable characters.
std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  if (out.empty()) out = "table";
  return out;
}

}  // namespace

Result<std::unique_ptr<TableSpace>> TableSpace::Open(Vfs* vfs,
                                                     std::string root,
                                                     BufferPool* pool) {
  HTG_RETURN_IF_ERROR(vfs->CreateDirs(root));
  auto space = std::unique_ptr<TableSpace>(
      new TableSpace(vfs, std::move(root), pool));
  // Spill files are caches of in-memory tables; anything left from a
  // previous incarnation is garbage. Best effort — a stale file that
  // survives is truncated when its name is reused.
  auto listing = vfs->ListDir(space->root_);
  if (listing.ok()) {
    for (const std::string& name : *listing) {
      HTG_IGNORE_STATUS(vfs->DeleteFile(space->root_ + "/" + name));
    }
  }
  return space;
}

TableSpace::~TableSpace() = default;

Result<std::unique_ptr<TableFile>> TableSpace::CreateTableFile(
    const std::string& name) {
  uint64_t seq = 0;
  {
    MutexLock lock(&wal_mu_);
    seq = next_file_seq_++;
  }
  const std::string file_name =
      SanitizeName(name) + "_" + std::to_string(seq) + ".htd";
  const std::string path = root_ + "/" + file_name;

  // Create the (empty) data file eagerly so the pool has a readable
  // handle from day one; the appender stays open for write-back.
  HTG_ASSIGN_OR_RETURN(auto appender, vfs_->NewWritableFile(path));
  HTG_ASSIGN_OR_RETURN(auto reader, vfs_->NewRandomAccessFile(path));

  auto file =
      std::unique_ptr<TableFile>(new TableFile(this, file_name, path));
  file->appender_ = std::move(appender);

  PagedFileOptions options;
  options.checksummed = true;
  TableFile* raw = file.get();
  options.write_page = [raw](uint64_t page_no, std::string_view bytes) {
    return raw->WritePageOut(page_no, bytes);
  };
  file->file_id_ = pool_->RegisterFile(std::move(reader), std::move(options));
  return file;
}

Status TableSpace::LogPageWrite(const std::string& file_name,
                                uint64_t page_no, std::string_view bytes) {
  MutexLock lock(&wal_mu_);
  if (wal_ == nullptr) {
    std::vector<WalRecord> recovered;  // stale records; superseded by sweep
    HTG_ASSIGN_OR_RETURN(wal_,
                         WriteAheadLog::Open(vfs_, root_ + "/WAL", &recovered));
    HTG_RETURN_IF_ERROR(wal_->Reset());
  }
  WalRecord record;
  record.type = WalRecordType::kIntentCreate;
  record.name = file_name + "#" + std::to_string(page_no);
  record.size = bytes.size();
  record.content_crc = Crc32c(bytes.data(), bytes.size());
  // No fsync: the WAL orders write-back (record strictly precedes data
  // bytes) rather than anchoring durability — spill files are rebuildable.
  return wal_->Append(record, /*sync=*/false);
}

TableFile::~TableFile() {
  // Dirty frames are discarded with the registration: the table owning
  // this file is being destroyed, so its pages are dead.
  space_->pool()->UnregisterFile(file_id_);
  if (appender_ != nullptr) HTG_IGNORE_STATUS(appender_->Close());
  HTG_IGNORE_STATUS(space_->vfs()->DeleteFile(path_));
}

Result<uint64_t> TableFile::AppendPage(std::string bytes) {
  const uint64_t page_no = next_page_;
  const uint64_t offset = append_offset_;
  const uint32_t length = static_cast<uint32_t>(bytes.size());
  BufferPool* pool = space_->pool();
  pool->AddPageExtent(file_id_, page_no, offset, length);
  HTG_RETURN_IF_ERROR(
      pool->PutPage(file_id_, page_no, std::move(bytes), /*dirty=*/true));
  next_page_ = page_no + 1;
  page_offsets_.push_back(offset);
  append_offset_ = offset + length;
  return page_no;
}

Result<PageGuard> TableFile::ReadPage(uint64_t page_no) const {
  return space_->pool()->Fetch(file_id_, page_no);
}

Status TableFile::DropTailPages(uint64_t first_dropped) {
  BufferPool* pool = space_->pool();
  // Top-down so the pool's dirty-run bookkeeping shrinks from its tail.
  for (uint64_t page = next_page_; page > first_dropped; --page) {
    pool->DropPage(file_id_, page - 1);
  }
  next_page_ = first_dropped;
  const uint64_t rewound = first_dropped < page_offsets_.size()
                               ? page_offsets_[first_dropped]
                               : append_offset_;
  page_offsets_.resize(first_dropped);
  // Future appends must land at or after the physical EOF: bytes of a
  // dropped-but-already-flushed page become dead space in the append-only
  // file rather than being reclaimed. (Dropped frames can no longer
  // flush, so flushed_bytes_ is final for this comparison.)
  append_offset_ = std::max(rewound,
                            flushed_bytes_.load(std::memory_order_acquire));
  return Status::OK();
}

Status TableFile::Flush() { return space_->pool()->FlushFile(file_id_); }

Status TableFile::WritePageOut(uint64_t page_no, std::string_view bytes) {
  HTG_RETURN_IF_ERROR(space_->LogPageWrite(name_, page_no, bytes));
  HTG_RETURN_IF_ERROR(appender_->Append(bytes));
  flushed_bytes_.fetch_add(bytes.size(), std::memory_order_release);
  return Status::OK();
}

}  // namespace htg::storage
