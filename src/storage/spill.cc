#include "storage/spill.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/varint.h"
#include "storage/page.h"

namespace htg::storage {

namespace {

// Record kind tags (first byte of every value record).
constexpr char kTagNull = 0;
constexpr char kTagInt = 1;     // bool / int32 / int64, zig-zag varint
constexpr char kTagDouble = 2;  // 8 raw little-endian bytes
constexpr char kTagString = 3;  // string / blob / guid, length-prefixed

void PutFixed32(std::string* dst, uint32_t v) {
  dst->push_back(static_cast<char>(v & 0xff));
  dst->push_back(static_cast<char>((v >> 8) & 0xff));
  dst->push_back(static_cast<char>((v >> 16) & 0xff));
  dst->push_back(static_cast<char>((v >> 24) & 0xff));
}

Status Truncated() {
  return Status::Corruption("spill record truncated");
}

}  // namespace

void SpillEncodeRow(const Row& row, std::string* out) {
  PutVarint64(out, row.size());
  for (const Value& v : row) {
    if (v.is_null()) {
      out->push_back(kTagNull);
      continue;
    }
    if (v.IsIntegerKind()) {
      out->push_back(kTagInt);
      out->push_back(static_cast<char>(v.type()));
      PutVarintSigned64(out, v.AsInt64());
    } else if (v.IsDoubleKind()) {
      out->push_back(kTagDouble);
      out->push_back(static_cast<char>(v.type()));
      const double d = v.AsDouble();
      char bytes[sizeof(double)];
      std::memcpy(bytes, &d, sizeof(double));
      out->append(bytes, sizeof(double));
    } else {
      out->push_back(kTagString);
      out->push_back(static_cast<char>(v.type()));
      PutLengthPrefixed(out, v.AsString());
    }
  }
}

Status SpillDecodeRow(const char** p, const char* limit, Row* row) {
  row->clear();
  uint64_t ncols = 0;
  const char* cur = GetVarint64(*p, limit, &ncols);
  if (cur == nullptr) return Truncated();
  row->reserve(ncols);
  for (uint64_t i = 0; i < ncols; ++i) {
    if (cur >= limit) return Truncated();
    const char tag = *cur++;
    if (tag == kTagNull) {
      row->push_back(Value::Null());
      continue;
    }
    if (cur >= limit) return Truncated();
    const auto type = static_cast<DataType>(*cur++);
    switch (tag) {
      case kTagInt: {
        int64_t v = 0;
        cur = GetVarintSigned64(cur, limit, &v);
        if (cur == nullptr) return Truncated();
        if (type == DataType::kBool) {
          row->push_back(Value::Bool(v != 0));
        } else if (type == DataType::kInt32) {
          row->push_back(Value::Int32(static_cast<int32_t>(v)));
        } else {
          row->push_back(Value::Int64(v));
        }
        break;
      }
      case kTagDouble: {
        if (limit - cur < static_cast<ptrdiff_t>(sizeof(double))) {
          return Truncated();
        }
        double d = 0;
        std::memcpy(&d, cur, sizeof(double));
        cur += sizeof(double);
        row->push_back(Value::Double(d));
        break;
      }
      case kTagString: {
        std::string_view s;
        cur = GetLengthPrefixed(cur, limit, &s);
        if (cur == nullptr) return Truncated();
        if (type == DataType::kBlob) {
          row->push_back(Value::Blob(std::string(s)));
        } else if (type == DataType::kGuid) {
          row->push_back(Value::Guid(std::string(s)));
        } else {
          row->push_back(Value::String(std::string(s)));
        }
        break;
      }
      default:
        return Status::Corruption(
            StringPrintf("spill record has unknown tag %d", tag));
    }
  }
  *p = cur;
  return Status::OK();
}

Result<std::unique_ptr<SpillFile>> SpillFile::Create(
    TableSpace* space, const std::string& label) {
  if (space == nullptr) {
    return Status::Internal("spill requested without a tablespace");
  }
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<TableFile> file,
                       space->CreateTableFile("spill_" + label));
  return {std::unique_ptr<SpillFile>(new SpillFile(std::move(file)))};
}

Status SpillRunWriter::Add(const Row& row) {
  SpillEncodeRow(row, &buf_);
  ++buf_rows_;
  if (buf_.size() >= page_bytes_) return SealPage();
  return Status::OK();
}

Status SpillRunWriter::SealPage() {
  if (buf_rows_ == 0) return Status::OK();
  std::string page;
  page.reserve(buf_.size() + 16);
  PutVarint64(&page, buf_rows_);
  page.append(buf_);
  PutFixed32(&page, Crc32c(page));
  HTG_ASSIGN_OR_RETURN(const uint64_t page_no,
                       file_->file()->AppendPage(std::move(page)));
  run_.pages.push_back(page_no);
  run_.rows += buf_rows_;
  run_.bytes += buf_.size();
  buf_.clear();
  buf_rows_ = 0;
  return Status::OK();
}

Result<SpillRun> SpillRunWriter::Finish() {
  HTG_RETURN_IF_ERROR(SealPage());
  HTG_METRIC_COUNTER("exec.spill.runs")->Add(1);
  HTG_METRIC_COUNTER("exec.spill.bytes")->Add(run_.bytes);
  return std::move(run_);
}

bool SpillRunReader::LoadNextPage() {
  while (page_rows_left_ == 0) {
    guard_.Release();
    if (next_page_index_ >= run_.pages.size()) return false;
    auto page = file_->file()->ReadPage(run_.pages[next_page_index_++]);
    if (!page.ok()) {
      status_ = std::move(page).status();
      return false;
    }
    guard_ = std::move(page).value();
    const Slice data = guard_.data();
    if (data.size() < kPageChecksumBytes) {
      status_ = Status::Corruption("spill page shorter than its trailer");
      return false;
    }
    pos_ = data.data();
    limit_ = data.data() + data.size() - kPageChecksumBytes;
    pos_ = GetVarint64(pos_, limit_, &page_rows_left_);
    if (pos_ == nullptr) {
      status_ = Status::Corruption("spill page header truncated");
      return false;
    }
  }
  return true;
}

bool SpillRunReader::Next(Row* row) {
  if (!status_.ok()) return false;
  if (!LoadNextPage()) return false;
  const Status s = SpillDecodeRow(&pos_, limit_, row);
  if (!s.ok()) {
    status_ = s;
    return false;
  }
  --page_rows_left_;
  return true;
}

}  // namespace htg::storage
