#include "storage/heap_table.h"

#include "common/metrics.h"

namespace htg::storage {

class HeapTable::ScanIterator : public RowIterator {
 public:
  ScanIterator(HeapTable* table, size_t first_page, size_t end_page)
      : table_(table), page_index_(first_page), end_page_(end_page) {}

  bool Next(Row* row) override {
    for (;;) {
      if (reader_ != nullptr && reader_->Next(row)) return true;
      if (reader_ != nullptr) {
        status_ = reader_->status();
        if (!status_.ok()) return false;
      }
      if (page_index_ >= end_page_ || page_index_ >= table_->pages_.size()) {
        return false;
      }
      reader_ = std::make_unique<PageReader>(&table_->schema_,
                                             Slice(table_->pages_[page_index_]));
      ++page_index_;
      HTG_METRIC_COUNTER("heap.page.reads")->Add(1);
      status_ = reader_->Init();
      if (!status_.ok()) return false;
    }
  }

  Status status() const override { return status_; }

 private:
  HeapTable* table_;
  size_t page_index_;
  size_t end_page_;
  std::unique_ptr<PageReader> reader_;
  Status status_;
};

HeapTable::HeapTable(Schema schema, Compression mode, size_t page_size)
    : schema_(std::move(schema)),
      mode_(mode),
      page_size_(page_size),
      builder_(&schema_, mode, page_size) {}

Status HeapTable::Insert(const Row& row) {
  HTG_RETURN_IF_ERROR(builder_.Add(row));
  ++num_rows_;
  if (builder_.ShouldFlush()) SealCurrentPage();
  return Status::OK();
}

void HeapTable::SealCurrentPage() {
  if (builder_.empty()) return;
  page_rows_.push_back(builder_.row_count());
  pages_.push_back(builder_.Finish());
}

StorageStats HeapTable::Stats() const {
  StorageStats stats;
  stats.rows = num_rows_;
  stats.pages = pages_.size() + (builder_.empty() ? 0 : 1);
  for (const std::string& p : pages_) stats.data_bytes += p.size();
  stats.data_bytes += builder_.raw_bytes();
  return stats;
}

std::unique_ptr<RowIterator> HeapTable::NewScan() {
  SealCurrentPage();
  return std::make_unique<ScanIterator>(this, 0, pages_.size());
}

std::unique_ptr<RowIterator> HeapTable::NewScanRange(size_t first_page,
                                                     size_t end_page) {
  SealCurrentPage();
  return std::make_unique<ScanIterator>(this, first_page,
                                        std::min(end_page, pages_.size()));
}

void HeapTable::Truncate() {
  pages_.clear();
  page_rows_.clear();
  builder_ = PageBuilder(&schema_, mode_, page_size_);
  num_rows_ = 0;
}

Status HeapTable::TruncateToRows(uint64_t target_rows) {
  SealCurrentPage();
  if (target_rows >= num_rows_) return Status::OK();
  // Drop whole tail pages; if the boundary falls inside a page, re-insert
  // the surviving prefix of that page.
  uint64_t rows = num_rows_;
  std::vector<Row> survivors;
  Status status;
  while (!pages_.empty() && rows > target_rows) {
    const uint64_t page_rows = page_rows_.back();
    if (rows - page_rows >= target_rows) {
      rows -= page_rows;
      pages_.pop_back();
      page_rows_.pop_back();
      continue;
    }
    // Partial page: keep the first (target_rows - (rows - page_rows)) rows.
    const uint64_t keep = target_rows - (rows - page_rows);
    PageReader reader(&schema_, Slice(pages_.back()));
    status = reader.Init();
    if (status.ok()) {
      Row row;
      for (uint64_t i = 0; i < keep; ++i) {
        if (!reader.Next(&row)) {
          status = reader.status().ok()
                       ? Status::Internal("heap page ended before surviving "
                                          "rows were recovered")
                       : reader.status();
          break;
        }
        survivors.push_back(row);
      }
    }
    rows -= page_rows;
    pages_.pop_back();
    page_rows_.pop_back();
  }
  num_rows_ = rows;
  for (const Row& r : survivors) {
    // Re-encoding rows that were valid on the dropped page; a failure here
    // means the undo lost rows and must not be silently swallowed.
    Status insert = Insert(r);
    if (!insert.ok() && status.ok()) status = insert;
  }
  SealCurrentPage();
  return status;
}

}  // namespace htg::storage
