#include "storage/heap_table.h"

#include <limits>

#include "common/metrics.h"

namespace htg::storage {

class HeapTable::ScanIterator : public RowIterator {
 public:
  // `tail_rows` caps the number of rows emitted from page end_page - 1
  // (0 = no cap) — how snapshot scans stop mid-page when the visible row
  // limit falls inside a sealed page.
  ScanIterator(HeapTable* table, size_t first_page, size_t end_page,
               uint64_t tail_rows = 0)
      : table_(table),
        page_index_(first_page),
        end_page_(end_page),
        tail_rows_(tail_rows) {}

  bool Next(Row* row) override {
    for (;;) {
      if (reader_ != nullptr && rows_left_ > 0 && reader_->Next(row)) {
        --rows_left_;
        return true;
      }
      if (reader_ != nullptr && rows_left_ > 0) {
        status_ = reader_->status();
        if (!status_.ok()) return false;
      }
      if (!AdvancePage()) return false;
    }
  }

  // Batch-native fill: decodes page rows straight into the batch while
  // the page pin is held, so the per-row virtual Next() dispatch of the
  // Volcano path disappears from the scan entirely.
  bool NextBatch(RowBatch* batch) override {
    batch->Clear();
    Row row;
    for (;;) {
      if (reader_ != nullptr) {
        while (!batch->full() && rows_left_ > 0 && reader_->Next(&row)) {
          --rows_left_;
          batch->AppendRow(std::move(row));
          row.clear();
        }
        if (batch->full()) return true;
        if (rows_left_ > 0) {
          status_ = reader_->status();
          if (!status_.ok()) return false;
        }
      }
      if (!AdvancePage()) return status_.ok() && batch->num_rows() > 0;
    }
  }

  bool BatchNative() const override { return true; }

  Status status() const override { return status_; }

 private:
  // Positions reader_ on the next page of the range. Returns false at the
  // end of the range or on error (status_ distinguishes). The page fetch
  // runs under the table's shared lock so it cannot race a truncation
  // rewriting the page directory; the fetched image stays valid after the
  // lock drops (shared_ptr in memory mode, pin in pooled mode).
  bool AdvancePage() {
    if (page_index_ >= end_page_) return false;
    Slice page;
    {
      ReaderMutexLock lock(&table_->mu_);
      if (page_index_ >= table_->page_rows_.size()) return false;
      if (table_->backing_ != nullptr) {
        auto pinned = table_->backing_->ReadPage(page_index_);
        if (!pinned.ok()) {
          status_ = std::move(pinned).status();
          return false;
        }
        // Drop the reader into the old page before unpinning it.
        reader_.reset();
        guard_ = std::move(pinned).value();
        page = guard_.data();
      } else {
        page_ref_ = table_->pages_[page_index_];
        page = Slice(*page_ref_);
      }
    }
    ++page_index_;
    rows_left_ = (page_index_ == end_page_ && tail_rows_ > 0)
                     ? tail_rows_
                     : std::numeric_limits<uint64_t>::max();
    HTG_METRIC_COUNTER("heap.page.reads")->Add(1);
    reader_ = std::make_unique<PageReader>(&table_->schema_, page);
    status_ = reader_->Init();
    if (!status_.ok()) {
      reader_.reset();
      return false;
    }
    return true;
  }

  HeapTable* table_;
  size_t page_index_;
  size_t end_page_;
  uint64_t tail_rows_;
  uint64_t rows_left_ = 0;  // cap on rows still to emit from this page
  PageGuard guard_;  // pin on the page reader_ is positioned on
  std::shared_ptr<const std::string> page_ref_;  // in-memory image keepalive
  std::unique_ptr<PageReader> reader_;
  Status status_;
};

namespace {

// Scan stand-in for a table whose in-progress page failed to seal.
class FailedIterator : public RowIterator {
 public:
  explicit FailedIterator(Status status) : status_(std::move(status)) {}
  bool Next(Row*) override { return false; }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

HeapTable::HeapTable(Schema schema, Compression mode, size_t page_size)
    : schema_(std::move(schema)),
      mode_(mode),
      page_size_(page_size),
      builder_(&schema_, mode, page_size) {}

Status HeapTable::AttachStorage(TableSpace* space, const std::string& name) {
  if (num_rows() != 0 || backing_ != nullptr) {
    return Status::InvalidArgument(
        "AttachStorage requires an empty, unattached table");
  }
  HTG_ASSIGN_OR_RETURN(backing_, space->CreateTableFile(name));
  return Status::OK();
}

Status HeapTable::Insert(const Row& row) {
  MutexLock lock(&mu_);
  return InsertLocked(row);
}

Status HeapTable::InsertLocked(const Row& row) {
  HTG_RETURN_IF_ERROR(builder_.Add(row));
  num_rows_.fetch_add(1, std::memory_order_acq_rel);
  if (builder_.ShouldFlush()) HTG_RETURN_IF_ERROR(SealLocked());
  return Status::OK();
}

Status HeapTable::SealCurrentPage() {
  MutexLock lock(&mu_);
  return SealLocked();
}

Status HeapTable::SealLocked() {
  if (builder_.empty()) return Status::OK();
  const int rows = builder_.row_count();
  std::string page = builder_.Finish();
  page_rows_.push_back(rows);
  page_bytes_.push_back(static_cast<uint32_t>(page.size()));
  if (backing_ != nullptr) {
    auto page_no = backing_->AppendPage(std::move(page));
    if (!page_no.ok()) {
      // The rows of the failed page are gone; surface that rather than
      // pretending the table still holds them.
      page_rows_.pop_back();
      page_bytes_.pop_back();
      num_rows_.fetch_sub(static_cast<uint64_t>(rows),
                          std::memory_order_acq_rel);
      return std::move(page_no).status();
    }
  } else {
    pages_.push_back(std::make_shared<const std::string>(std::move(page)));
  }
  sealed_rows_ += static_cast<uint64_t>(rows);
  return Status::OK();
}

StorageStats HeapTable::Stats() const {
  ReaderMutexLock lock(&mu_);
  StorageStats stats;
  stats.rows = num_rows();
  stats.pages = page_rows_.size() + (builder_.empty() ? 0 : 1);
  for (uint32_t bytes : page_bytes_) stats.data_bytes += bytes;
  stats.data_bytes += builder_.raw_bytes();
  return stats;
}

size_t HeapTable::num_pages_sealed() const {
  ReaderMutexLock lock(&mu_);
  return page_rows_.size();
}

std::unique_ptr<RowIterator> HeapTable::NewScan() {
  MutexLock lock(&mu_);
  Status sealed = SealLocked();
  if (!sealed.ok()) return std::make_unique<FailedIterator>(std::move(sealed));
  return std::make_unique<ScanIterator>(this, 0, page_rows_.size());
}

std::unique_ptr<RowIterator> HeapTable::NewScanRange(size_t first_page,
                                                     size_t end_page) {
  MutexLock lock(&mu_);
  Status sealed = SealLocked();
  if (!sealed.ok()) return std::make_unique<FailedIterator>(std::move(sealed));
  return std::make_unique<ScanIterator>(
      this, first_page, std::min(end_page, page_rows_.size()));
}

Result<HeapTable::PrefixPlan> HeapTable::PlanVisiblePrefix(
    uint64_t row_limit) {
  MutexLock lock(&mu_);
  row_limit = std::min(row_limit, num_rows());
  // The limit counts committed rows; when it reaches into the builder,
  // seal so the rows have a scannable page image. (Appending writers are
  // unaffected: sealing mid-transaction just closes a page early.)
  if (row_limit > sealed_rows_) HTG_RETURN_IF_ERROR(SealLocked());
  PrefixPlan plan;
  uint64_t acc = 0;
  for (size_t i = 0; i < page_rows_.size() && acc < row_limit; ++i) {
    const uint64_t rows = static_cast<uint64_t>(page_rows_[i]);
    plan.end_page = i + 1;
    if (acc + rows > row_limit) {
      plan.tail_rows = row_limit - acc;
    } else if (acc + rows == row_limit) {
      plan.tail_rows = 0;
    }
    acc += rows;
  }
  return plan;
}

std::unique_ptr<RowIterator> HeapTable::NewScanPrefix(uint64_t row_limit) {
  Result<PrefixPlan> plan = PlanVisiblePrefix(row_limit);
  if (!plan.ok()) {
    return std::make_unique<FailedIterator>(std::move(plan).status());
  }
  return std::make_unique<ScanIterator>(this, 0, plan->end_page,
                                        plan->tail_rows);
}

std::unique_ptr<RowIterator> HeapTable::NewScanRangeCapped(
    size_t first_page, size_t end_page, uint64_t tail_rows) {
  return std::make_unique<ScanIterator>(this, first_page, end_page,
                                        tail_rows);
}

void HeapTable::Truncate() {
  MutexLock lock(&mu_);
  if (backing_ != nullptr) HTG_IGNORE_STATUS(backing_->DropTailPages(0));
  pages_.clear();
  page_rows_.clear();
  page_bytes_.clear();
  sealed_rows_ = 0;
  builder_ = PageBuilder(&schema_, mode_, page_size_);
  num_rows_.store(0, std::memory_order_release);
}

Status HeapTable::TruncateToRows(uint64_t target_rows) {
  MutexLock lock(&mu_);
  HTG_RETURN_IF_ERROR(SealLocked());
  if (target_rows >= num_rows()) return Status::OK();
  // Drop whole tail pages; if the boundary falls inside a page, re-insert
  // the surviving prefix of that page. Snapshot readers are safe: their
  // visible limit only covers committed rows, which are all below
  // target_rows, and any page image they already fetched stays alive
  // (shared_ptr / pin) with its surviving prefix intact.
  uint64_t rows = num_rows();
  size_t keep_pages = page_rows_.size();
  std::vector<Row> survivors;
  Status status;
  while (keep_pages > 0 && rows > target_rows) {
    const uint64_t page_rows =
        static_cast<uint64_t>(page_rows_[keep_pages - 1]);
    if (rows - page_rows < target_rows) {
      // Partial page: keep its first (target_rows - rows_before_it) rows.
      const uint64_t keep = target_rows - (rows - page_rows);
      PageGuard guard;
      Slice page;
      std::shared_ptr<const std::string> page_ref;
      if (backing_ != nullptr) {
        auto pinned = backing_->ReadPage(keep_pages - 1);
        if (pinned.ok()) {
          guard = std::move(pinned).value();
          page = guard.data();
        } else {
          status = std::move(pinned).status();
        }
      } else {
        page_ref = pages_[keep_pages - 1];
        page = Slice(*page_ref);
      }
      if (status.ok()) {
        PageReader reader(&schema_, page);
        status = reader.Init();
        if (status.ok()) {
          Row row;
          for (uint64_t i = 0; i < keep; ++i) {
            if (!reader.Next(&row)) {
              status = reader.status().ok()
                           ? Status::Internal("heap page ended before "
                                              "surviving rows were recovered")
                           : reader.status();
              break;
            }
            survivors.push_back(row);
          }
        }
      }
    }
    rows -= page_rows;
    --keep_pages;
  }
  if (backing_ != nullptr) {
    Status dropped = backing_->DropTailPages(keep_pages);
    if (!dropped.ok() && status.ok()) status = dropped;
  } else {
    pages_.resize(keep_pages);
  }
  uint64_t kept_sealed = 0;
  for (size_t i = 0; i < keep_pages; ++i) {
    kept_sealed += static_cast<uint64_t>(page_rows_[i]);
  }
  page_rows_.resize(keep_pages);
  page_bytes_.resize(keep_pages);
  sealed_rows_ = kept_sealed;
  num_rows_.store(rows, std::memory_order_release);
  for (const Row& r : survivors) {
    // Re-encoding rows that were valid on the dropped page; a failure here
    // means the undo lost rows and must not be silently swallowed.
    Status insert = InsertLocked(r);
    if (!insert.ok() && status.ok()) status = insert;
  }
  Status sealed = SealLocked();
  if (!sealed.ok() && status.ok()) status = sealed;
  return status;
}

}  // namespace htg::storage
