#include "storage/wal.h"

#include "common/crc32c.h"
#include "common/metrics.h"
#include "common/varint.h"

namespace htg::storage {

namespace {

void PutU32(std::string* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

// Decodes records from `data` into `out`, stopping at the first truncated
// or CRC-failing record (the torn tail a crash leaves behind).
void DecodeWalRecords(std::string_view data, std::vector<WalRecord>* out) {
  const char* p = data.data();
  const char* limit = p + data.size();
  while (p < limit) {
    uint64_t payload_len = 0;
    const char* q = GetVarint64(p, limit, &payload_len);
    if (q == nullptr || static_cast<uint64_t>(limit - q) < payload_len + 4) {
      return;  // truncated tail
    }
    const uint32_t stored_crc = GetU32(q);
    const char* payload = q + 4;
    if (Crc32c(payload, payload_len) != stored_crc) {
      return;  // torn tail record
    }
    const char* end = payload + payload_len;
    WalRecord record;
    if (payload >= end) return;
    record.type = static_cast<WalRecordType>(*payload++);
    std::string_view name;
    payload = GetLengthPrefixed(payload, end, &name);
    if (payload == nullptr) return;
    record.name = std::string(name);
    uint64_t size = 0;
    payload = GetVarint64(payload, end, &size);
    if (payload == nullptr || end - payload < 4) return;
    record.size = size;
    record.content_crc = GetU32(payload);
    out->push_back(std::move(record));
    p = end;
  }
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  PutLengthPrefixed(&payload, record.name);
  PutVarint64(&payload, record.size);
  PutU32(&payload, record.content_crc);

  std::string framed;
  PutVarint64(&framed, payload.size());
  PutU32(&framed, Crc32c(payload));
  framed.append(payload);
  return framed;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    Vfs* vfs, std::string path, std::vector<WalRecord>* recovered) {
  recovered->clear();
  if (vfs->FileExists(path)) {
    HTG_ASSIGN_OR_RETURN(std::string data, vfs->ReadFileToString(path));
    DecodeWalRecords(data, recovered);
    HTG_METRIC_COUNTER("wal.recoveries")->Add(1);
    HTG_METRIC_COUNTER("wal.replayed.records")->Add(recovered->size());
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(vfs, std::move(path)));
}

Status WriteAheadLog::EnsureOpen() {
  if (file_ != nullptr) return Status::OK();
  HTG_ASSIGN_OR_RETURN(file_, vfs_->NewAppendableFile(path_));
  return Status::OK();
}

Status WriteAheadLog::Append(const WalRecord& record, bool sync) {
  HTG_RETURN_IF_ERROR(EnsureOpen());
  HTG_RETURN_IF_ERROR(file_->Append(EncodeWalRecord(record)));
  HTG_METRIC_COUNTER("wal.appends")->Add(1);
  if (sync) {
    HTG_RETURN_IF_ERROR(file_->Sync());
    HTG_METRIC_COUNTER("wal.commits")->Add(1);
  }
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  if (file_ != nullptr) {
    HTG_RETURN_IF_ERROR(file_->Close());
    file_ = nullptr;
  }
  // Truncate by recreating; the next Append reopens in append mode.
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       vfs_->NewWritableFile(path_));
  HTG_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

}  // namespace htg::storage
