#include "storage/clustered_table.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/string_util.h"
#include "storage/page.h"

namespace htg::storage {

namespace {

// Pooled-mode leaf reference: where one row's payload lives in the
// table's leaf-page file.
struct LeafRef {
  uint32_t page_no = 0;
  uint32_t offset = 0;
  uint32_t length = 0;
};

constexpr size_t kLeafRefBytes = 12;

std::string EncodeLeafRef(const LeafRef& ref) {
  std::string out(kLeafRefBytes, '\0');
  std::memcpy(out.data(), &ref.page_no, 4);
  std::memcpy(out.data() + 4, &ref.offset, 4);
  std::memcpy(out.data() + 8, &ref.length, 4);
  return out;
}

Status DecodeLeafRef(const std::string& payload, LeafRef* ref) {
  if (payload.size() != kLeafRefBytes) {
    return Status::Corruption("clustered leaf reference has wrong size");
  }
  std::memcpy(&ref->page_no, payload.data(), 4);
  std::memcpy(&ref->offset, payload.data() + 4, 4);
  std::memcpy(&ref->length, payload.data() + 8, 4);
  return Status::OK();
}

// Verifies the per-row CRC32C trailer and decodes the row image.
Status DecodePayload(const Schema& schema, Compression row_mode,
                     Slice payload, Row* row) {
  if (payload.size() < 4) {
    return Status::Corruption("clustered leaf payload too small");
  }
  const size_t body = payload.size() - 4;
  uint32_t expected = 0;
  for (int i = 0; i < 4; ++i) {
    expected |= static_cast<uint32_t>(
                    static_cast<unsigned char>(payload[body + i]))
                << (8 * i);
  }
  const uint32_t actual = Crc32c(payload.data(), body);
  if (expected != actual) {
    return Status::Corruption(
        StringPrintf("clustered leaf checksum mismatch "
                     "(stored %08x, computed %08x)",
                     expected, actual));
  }
  return DecodeRow(schema, row_mode, Slice(payload.data(), body), row);
}

}  // namespace

class ClusteredTable::ScanIterator : public RowIterator {
 public:
  ScanIterator(const ClusteredTable* table, BPlusTree::Cursor cursor)
      : table_(table), cursor_(cursor) {}

  bool Next(Row* row) override {
    if (!cursor_.Valid()) return false;
    const std::string& payload = cursor_.payload();
    if (table_->backing_ == nullptr) {
      status_ = DecodePayload(table_->schema_, table_->row_mode_,
                              Slice(payload), row);
    } else {
      status_ = ResolveAndDecode(payload, row);
    }
    if (!status_.ok()) return false;
    cursor_.Advance();
    return true;
  }

  // Batch-native fill: one cursor walk decodes a whole batch, reusing the
  // leaf-page pin across the run of rows that share a page.
  bool NextBatch(RowBatch* batch) override {
    batch->Clear();
    Row row;
    while (!batch->full() && cursor_.Valid()) {
      const std::string& payload = cursor_.payload();
      if (table_->backing_ == nullptr) {
        status_ = DecodePayload(table_->schema_, table_->row_mode_,
                                Slice(payload), &row);
      } else {
        status_ = ResolveAndDecode(payload, &row);
      }
      if (!status_.ok()) return false;
      batch->AppendRow(std::move(row));
      row.clear();
      cursor_.Advance();
    }
    return batch->num_rows() > 0;
  }

  bool BatchNative() const override { return true; }

  Status status() const override { return status_; }

 private:
  Status ResolveAndDecode(const std::string& encoded_ref, Row* row) {
    LeafRef ref;
    HTG_RETURN_IF_ERROR(DecodeLeafRef(encoded_ref, &ref));
    Slice page;
    if (ref.page_no == table_->backing_->num_pages()) {
      // Still in the in-progress leaf page (no concurrent DML during
      // scans, so the buffer is stable while this iterator runs).
      page = Slice(table_->leaf_buf_);
    } else {
      // Key order visits runs of rows on the same leaf page; keep the
      // pin across the run instead of re-fetching per row.
      if (!guard_.valid() || guard_.page_no() != ref.page_no) {
        auto pinned = table_->backing_->ReadPage(ref.page_no);
        if (!pinned.ok()) return std::move(pinned).status();
        guard_ = std::move(pinned).value();
      }
      page = guard_.data();
    }
    if (static_cast<uint64_t>(ref.offset) + ref.length > page.size()) {
      return Status::Corruption("clustered leaf reference out of bounds");
    }
    return DecodePayload(table_->schema_, table_->row_mode_,
                         Slice(page.data() + ref.offset, ref.length), row);
  }

  const ClusteredTable* table_;
  BPlusTree::Cursor cursor_;
  PageGuard guard_;  // pin on the sealed leaf page last resolved
  Status status_;
};

ClusteredTable::ClusteredTable(Schema schema, std::vector<int> key_columns,
                               Compression mode)
    : schema_(std::move(schema)),
      key_columns_(std::move(key_columns)),
      mode_(mode),
      row_mode_(mode == Compression::kNone ? Compression::kNone
                                           : Compression::kRow) {}

Status ClusteredTable::AttachStorage(TableSpace* space,
                                     const std::string& name) {
  if (tree_.size() != 0 || backing_ != nullptr) {
    return Status::InvalidArgument(
        "AttachStorage requires an empty, unattached table");
  }
  HTG_ASSIGN_OR_RETURN(backing_, space->CreateTableFile(name));
  return Status::OK();
}

Status ClusteredTable::Insert(const Row& row) {
  Row key;
  key.reserve(key_columns_.size());
  for (int c : key_columns_) {
    if (c < 0 || c >= static_cast<int>(row.size())) {
      return Status::Internal("clustered key column out of range");
    }
    key.push_back(row[c]);
  }
  std::string payload;
  HTG_RETURN_IF_ERROR(EncodeRow(schema_, row, row_mode_, &payload));
  // Per-payload CRC32C trailer: leaf payloads are the clustered table's
  // durable row images, so scans detect in-memory or spilled corruption the
  // same way page decodes do.
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  if (backing_ == nullptr) {
    tree_.Insert(std::move(key), std::move(payload));
    return Status::OK();
  }
  LeafRef ref;
  ref.page_no = static_cast<uint32_t>(backing_->num_pages());
  ref.offset = static_cast<uint32_t>(leaf_buf_.size());
  ref.length = static_cast<uint32_t>(payload.size());
  leaf_buf_.append(payload);
  payload_bytes_total_ += payload.size();
  tree_.Insert(std::move(key), EncodeLeafRef(ref));
  if (leaf_buf_.size() >= kDefaultPageSize) {
    HTG_RETURN_IF_ERROR(SealLeafPage());
  }
  return Status::OK();
}

Status ClusteredTable::SealLeafPage() {
  if (leaf_buf_.empty()) return Status::OK();
  // Page-level CRC32C trailer, the format the pool verifies on miss-fill.
  const uint32_t crc = Crc32c(leaf_buf_.data(), leaf_buf_.size());
  for (int i = 0; i < 4; ++i) {
    leaf_buf_.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  const uint64_t expected_page = backing_->num_pages();
  HTG_ASSIGN_OR_RETURN(const uint64_t page_no,
                       backing_->AppendPage(std::move(leaf_buf_)));
  leaf_buf_.clear();
  if (page_no != expected_page) {
    return Status::Internal("clustered leaf page numbering out of sync");
  }
  return Status::OK();
}

StorageStats ClusteredTable::Stats() const {
  StorageStats stats;
  stats.rows = tree_.size();
  stats.pages = tree_.num_nodes();
  // payload_bytes_total_ mirrors what tree_.payload_bytes() holds in the
  // in-memory mode, so the Table 1/2 numbers do not depend on residency.
  const uint64_t payload_bytes =
      backing_ == nullptr ? tree_.payload_bytes() : payload_bytes_total_;
  stats.data_bytes = payload_bytes + tree_.ApproxNodeBytes();
  return stats;
}

std::unique_ptr<RowIterator> ClusteredTable::NewScan() {
  return std::make_unique<ScanIterator>(this, tree_.First());
}

Result<std::unique_ptr<RowIterator>> ClusteredTable::NewScanFrom(
    const Row& prefix) {
  if (prefix.size() > key_columns_.size()) {
    return Status::InvalidArgument("seek key longer than clustered key");
  }
  return {std::make_unique<ScanIterator>(this, tree_.Seek(prefix))};
}

void ClusteredTable::Truncate() {
  tree_.Clear();
  leaf_buf_.clear();
  payload_bytes_total_ = 0;
  if (backing_ != nullptr) HTG_IGNORE_STATUS(backing_->DropTailPages(0));
}

}  // namespace htg::storage
