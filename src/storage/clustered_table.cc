#include "storage/clustered_table.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <tuple>

#include "common/crc32c.h"
#include "common/string_util.h"
#include "storage/page.h"

namespace htg::storage {

namespace {

// Pooled-mode leaf reference: where one row's payload lives in the
// table's leaf-page file.
struct LeafRef {
  uint32_t page_no = 0;
  uint32_t offset = 0;
  uint32_t length = 0;
};

constexpr size_t kLeafRefBytes = 12;

std::string EncodeLeafRef(const LeafRef& ref) {
  std::string out(kLeafRefBytes, '\0');
  std::memcpy(out.data(), &ref.page_no, 4);
  std::memcpy(out.data() + 4, &ref.offset, 4);
  std::memcpy(out.data() + 8, &ref.length, 4);
  return out;
}

Status DecodeLeafRef(const std::string& payload, LeafRef* ref) {
  if (payload.size() != kLeafRefBytes) {
    return Status::Corruption("clustered leaf reference has wrong size");
  }
  std::memcpy(&ref->page_no, payload.data(), 4);
  std::memcpy(&ref->offset, payload.data() + 4, 4);
  std::memcpy(&ref->length, payload.data() + 8, 4);
  return Status::OK();
}

// Verifies the per-row CRC32C trailer and decodes the row image.
Status DecodePayload(const Schema& schema, Compression row_mode,
                     Slice payload, Row* row) {
  if (payload.size() < 4) {
    return Status::Corruption("clustered leaf payload too small");
  }
  const size_t body = payload.size() - 4;
  uint32_t expected = 0;
  for (int i = 0; i < 4; ++i) {
    expected |= static_cast<uint32_t>(
                    static_cast<unsigned char>(payload[body + i]))
                << (8 * i);
  }
  const uint32_t actual = Crc32c(payload.data(), body);
  if (expected != actual) {
    return Status::Corruption(
        StringPrintf("clustered leaf checksum mismatch "
                     "(stored %08x, computed %08x)",
                     expected, actual));
  }
  return DecodeRow(schema, row_mode, Slice(payload.data(), body), row);
}

// Full-key comparison, shorter keys sort first on ties (mirrors the
// B+-tree's internal ordering; snapshot scans use it to resume).
int CompareFull(const Row& a, const Row& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int r = a[i].Compare(b[i]);
    if (r != 0) return r;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

}  // namespace

Status ClusteredTable::DecodeEntryLocked(const std::string& payload,
                                         PageGuard* guard, Row* row) const {
  if (backing_ == nullptr) {
    return DecodePayload(schema_, row_mode_, Slice(payload), row);
  }
  LeafRef ref;
  HTG_RETURN_IF_ERROR(DecodeLeafRef(payload, &ref));
  Slice page;
  if (ref.page_no == backing_->num_pages()) {
    // Still in the in-progress leaf page; the latch (held by the caller)
    // keeps the buffer stable against concurrent inserts.
    page = Slice(leaf_buf_);
  } else {
    // Key order visits runs of rows on the same leaf page; keep the
    // pin across the run instead of re-fetching per row.
    if (!guard->valid() || guard->page_no() != ref.page_no) {
      auto pinned = backing_->ReadPage(ref.page_no);
      if (!pinned.ok()) return std::move(pinned).status();
      *guard = std::move(pinned).value();
    }
    page = guard->data();
  }
  if (static_cast<uint64_t>(ref.offset) + ref.length > page.size()) {
    return Status::Corruption("clustered leaf reference out of bounds");
  }
  return DecodePayload(schema_, row_mode_,
                       Slice(page.data() + ref.offset, ref.length), row);
}

// Legacy cursor scan: key-ordered walk assuming no concurrent DML (the
// library-mode contract — a cursor points into tree nodes between calls).
// Each call still takes the shared latch so field access is race-free
// against the MVCC write paths.
class ClusteredTable::ScanIterator : public RowIterator {
 public:
  ScanIterator(const ClusteredTable* table, BPlusTree::Cursor cursor)
      : table_(table), cursor_(cursor) {}

  bool Next(Row* row) override {
    ReaderMutexLock lock(&table_->latch_);
    if (!cursor_.Valid()) return false;
    status_ = table_->DecodeEntryLocked(cursor_.payload(), &guard_, row);
    if (!status_.ok()) return false;
    cursor_.Advance();
    return true;
  }

  // Batch-native fill: one cursor walk decodes a whole batch, reusing the
  // leaf-page pin across the run of rows that share a page.
  bool NextBatch(RowBatch* batch) override {
    batch->Clear();
    ReaderMutexLock lock(&table_->latch_);
    Row row;
    while (!batch->full() && cursor_.Valid()) {
      status_ = table_->DecodeEntryLocked(cursor_.payload(), &guard_, &row);
      if (!status_.ok()) return false;
      batch->AppendRow(std::move(row));
      row.clear();
      cursor_.Advance();
    }
    return batch->num_rows() > 0;
  }

  bool BatchNative() const override { return true; }

  Status status() const override { return status_; }

 private:
  const ClusteredTable* table_;
  BPlusTree::Cursor cursor_;
  PageGuard guard_;  // pin on the sealed leaf page last resolved
  Status status_;
};

// MVCC snapshot scan: latch-per-refill with (key, visible-duplicate
// count) resume, so a concurrent writer's inserts (and splits they
// trigger) never invalidate scan state — the cursor is rebuilt from the
// key each refill. Entries are filtered by stamp visibility.
class ClusteredTable::SnapshotIterator : public RowIterator {
 public:
  SnapshotIterator(const ClusteredTable* table, Snapshot snap, TxnId self)
      : table_(table), snap_(std::move(snap)), self_(self) {}

  SnapshotIterator(const ClusteredTable* table, Snapshot snap, TxnId self,
                   Row seek)
      : table_(table),
        snap_(std::move(snap)),
        self_(self),
        seek_(std::move(seek)) {}

  bool Next(Row* row) override {
    for (;;) {
      if (buffer_pos_ < buffer_.size()) {
        *row = std::move(buffer_[buffer_pos_++]);
        return true;
      }
      if (!Refill()) return false;
    }
  }

  bool NextBatch(RowBatch* batch) override {
    batch->Clear();
    for (;;) {
      while (!batch->full() && buffer_pos_ < buffer_.size()) {
        batch->AppendRow(std::move(buffer_[buffer_pos_++]));
      }
      if (batch->full()) return true;
      if (!Refill()) return status_.ok() && batch->num_rows() > 0;
    }
  }

  bool BatchNative() const override { return true; }

  Status status() const override { return status_; }

 private:
  static constexpr size_t kFillRows = 256;

  bool Visible(TxnId stamp) const {
    return stamp == kFrozenTxn || stamp == self_ || snap_.Sees(stamp);
  }

  bool Refill() {
    buffer_.clear();
    buffer_pos_ = 0;
    if (done_ || !status_.ok()) return false;
    ReaderMutexLock lock(&table_->latch_);
    BPlusTree::Cursor cur = PositionLocked();
    Row row;
    while (buffer_.size() < kFillRows && cur.Valid()) {
      const Row& key = cur.key();
      if (!started_ || CompareFull(key, last_key_) != 0) {
        last_key_ = key;
        seen_vis_ = 0;
        started_ = true;
      }
      if (Visible(cur.stamp())) {
        status_ = table_->DecodeEntryLocked(cur.payload(), &guard_, &row);
        if (!status_.ok()) {
          done_ = true;
          buffer_.clear();
          return false;
        }
        buffer_.push_back(std::move(row));
        row.clear();
        ++seen_vis_;
      }
      cur.Advance();
    }
    if (!cur.Valid()) done_ = true;
    // Drop the pin between refills: a long-lived snapshot scan should not
    // hold buffer-pool frames while the caller processes the batch.
    guard_ = PageGuard();
    return !buffer_.empty();
  }

  // Rebuilds a cursor at the first entry not yet consumed: lower-bound
  // seek to the last key, then skip the visible duplicates already
  // returned. Correct because equal keys insert after existing equals
  // and GC only removes invisible (aborted) entries.
  BPlusTree::Cursor PositionLocked() HTG_REQUIRES_SHARED(table_->latch_) {
    if (!started_) {
      return seek_.has_value() ? table_->tree_.Seek(*seek_)
                               : table_->tree_.First();
    }
    BPlusTree::Cursor cur = table_->tree_.Seek(last_key_);
    uint64_t skipped = 0;
    while (cur.Valid() && skipped < seen_vis_ &&
           CompareFull(cur.key(), last_key_) == 0) {
      if (Visible(cur.stamp())) ++skipped;
      cur.Advance();
    }
    return cur;
  }

  const ClusteredTable* table_;
  const Snapshot snap_;
  const TxnId self_;
  const std::optional<Row> seek_;

  bool started_ = false;
  bool done_ = false;
  Row last_key_;
  uint64_t seen_vis_ = 0;  // visible entries of last_key_ already consumed
  std::vector<Row> buffer_;
  size_t buffer_pos_ = 0;
  PageGuard guard_;
  Status status_;
};

ClusteredTable::ClusteredTable(Schema schema, std::vector<int> key_columns,
                               Compression mode)
    : schema_(std::move(schema)),
      key_columns_(std::move(key_columns)),
      mode_(mode),
      row_mode_(mode == Compression::kNone ? Compression::kNone
                                           : Compression::kRow) {}

Status ClusteredTable::AttachStorage(TableSpace* space,
                                     const std::string& name) {
  MutexLock lock(&latch_);
  if (tree_.size() != 0 || backing_ != nullptr) {
    return Status::InvalidArgument(
        "AttachStorage requires an empty, unattached table");
  }
  HTG_ASSIGN_OR_RETURN(backing_, space->CreateTableFile(name));
  return Status::OK();
}

Status ClusteredTable::Insert(const Row& row) {
  MutexLock lock(&latch_);
  return InsertLocked(row, kFrozenTxn);
}

Status ClusteredTable::InsertStamped(const Row& row, TxnId txn) {
  MutexLock lock(&latch_);
  return InsertLocked(row, txn);
}

Status ClusteredTable::InsertLocked(const Row& row, TxnId txn) {
  Row key;
  key.reserve(key_columns_.size());
  for (int c : key_columns_) {
    if (c < 0 || c >= static_cast<int>(row.size())) {
      return Status::Internal("clustered key column out of range");
    }
    key.push_back(row[c]);
  }
  std::string payload;
  HTG_RETURN_IF_ERROR(EncodeRow(schema_, row, row_mode_, &payload));
  // Per-payload CRC32C trailer: leaf payloads are the clustered table's
  // durable row images, so scans detect in-memory or spilled corruption the
  // same way page decodes do.
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  if (backing_ == nullptr) {
    tree_.Insert(std::move(key), std::move(payload), txn);
    return Status::OK();
  }
  LeafRef ref;
  ref.page_no = static_cast<uint32_t>(backing_->num_pages());
  ref.offset = static_cast<uint32_t>(leaf_buf_.size());
  ref.length = static_cast<uint32_t>(payload.size());
  leaf_buf_.append(payload);
  payload_bytes_total_ += payload.size();
  tree_.Insert(std::move(key), EncodeLeafRef(ref), txn);
  if (leaf_buf_.size() >= kDefaultPageSize) {
    HTG_RETURN_IF_ERROR(SealLeafPage());
  }
  return Status::OK();
}

Status ClusteredTable::SealLeafPage() {
  if (leaf_buf_.empty()) return Status::OK();
  // Page-level CRC32C trailer, the format the pool verifies on miss-fill.
  const uint32_t crc = Crc32c(leaf_buf_.data(), leaf_buf_.size());
  for (int i = 0; i < 4; ++i) {
    leaf_buf_.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  const uint64_t expected_page = backing_->num_pages();
  HTG_ASSIGN_OR_RETURN(const uint64_t page_no,
                       backing_->AppendPage(std::move(leaf_buf_)));
  leaf_buf_.clear();
  if (page_no != expected_page) {
    return Status::Internal("clustered leaf page numbering out of sync");
  }
  return Status::OK();
}

uint64_t ClusteredTable::num_rows() const {
  ReaderMutexLock lock(&latch_);
  return tree_.size() - std::min(tree_.size(), dead_rows_);
}

StorageStats ClusteredTable::Stats() const {
  ReaderMutexLock lock(&latch_);
  StorageStats stats;
  stats.rows = tree_.size() - std::min(tree_.size(), dead_rows_);
  stats.pages = tree_.num_nodes();
  // payload_bytes_total_ mirrors what tree_.payload_bytes() holds in the
  // in-memory mode, so the Table 1/2 numbers do not depend on residency.
  const uint64_t payload_bytes =
      backing_ == nullptr ? tree_.payload_bytes() : payload_bytes_total_;
  stats.data_bytes = payload_bytes + tree_.ApproxNodeBytes();
  return stats;
}

std::unique_ptr<RowIterator> ClusteredTable::NewScan() {
  ReaderMutexLock lock(&latch_);
  return std::make_unique<ScanIterator>(this, tree_.First());
}

Result<std::unique_ptr<RowIterator>> ClusteredTable::NewScanFrom(
    const Row& prefix) {
  if (prefix.size() > key_columns_.size()) {
    return Status::InvalidArgument("seek key longer than clustered key");
  }
  ReaderMutexLock lock(&latch_);
  return {std::make_unique<ScanIterator>(this, tree_.Seek(prefix))};
}

std::unique_ptr<RowIterator> ClusteredTable::NewSnapshotScan(Snapshot snap,
                                                             TxnId self) {
  return std::make_unique<SnapshotIterator>(this, std::move(snap), self);
}

Result<std::unique_ptr<RowIterator>> ClusteredTable::NewSnapshotScanFrom(
    const Row& prefix, Snapshot snap, TxnId self) {
  if (prefix.size() > key_columns_.size()) {
    return Status::InvalidArgument("seek key longer than clustered key");
  }
  return {std::make_unique<SnapshotIterator>(this, std::move(snap), self,
                                             prefix)};
}

void ClusteredTable::MarkAborted(uint64_t count) {
  MutexLock lock(&latch_);
  dead_rows_ += count;
}

uint64_t ClusteredTable::SweepAborted(const std::vector<TxnId>& aborted) {
  if (aborted.empty()) return 0;
  MutexLock lock(&latch_);
  // Sweep by stamp match alone — never gate on dead_rows_. The caller
  // retires an aborted id from the allocator's set right after this
  // sweep, so any entry it missed (say, an abort whose MarkAborted
  // accounting was lost) would become visible to every later snapshot
  // once Snapshot::Sees stops recognizing the id as aborted. A scan that
  // matches nothing is read-only and cheap.
  std::vector<std::tuple<Row, std::string, uint64_t>> keep;
  keep.reserve(tree_.size());
  uint64_t removed = 0;
  uint64_t removed_bytes = 0;
  for (BPlusTree::Cursor cur = tree_.First(); cur.Valid(); cur.Advance()) {
    if (std::binary_search(aborted.begin(), aborted.end(), cur.stamp())) {
      ++removed;
      if (backing_ != nullptr) {
        LeafRef ref;
        if (DecodeLeafRef(cur.payload(), &ref).ok()) {
          removed_bytes += ref.length;
        }
      }
      continue;
    }
    keep.emplace_back(cur.key(), cur.payload(), cur.stamp());
  }
  if (removed == 0) return 0;
  tree_.Clear();
  for (auto& [key, payload, stamp] : keep) {
    tree_.Insert(std::move(key), std::move(payload), stamp);
  }
  // Pooled mode: the swept payload bytes stay as dead space in the leaf
  // pages (accounting only; the space is not reclaimed).
  payload_bytes_total_ -= std::min(payload_bytes_total_, removed_bytes);
  dead_rows_ -= std::min(dead_rows_, removed);
  return removed;
}

void ClusteredTable::Truncate() {
  MutexLock lock(&latch_);
  tree_.Clear();
  leaf_buf_.clear();
  payload_bytes_total_ = 0;
  dead_rows_ = 0;
  if (backing_ != nullptr) HTG_IGNORE_STATUS(backing_->DropTailPages(0));
}

}  // namespace htg::storage
