#include "storage/clustered_table.h"

namespace htg::storage {

class ClusteredTable::ScanIterator : public RowIterator {
 public:
  ScanIterator(const ClusteredTable* table, BPlusTree::Cursor cursor)
      : table_(table), cursor_(cursor) {}

  bool Next(Row* row) override {
    if (!cursor_.Valid()) return false;
    status_ = DecodeRow(table_->schema_, table_->row_mode_,
                        Slice(cursor_.payload()), row);
    if (!status_.ok()) return false;
    cursor_.Advance();
    return true;
  }

  Status status() const override { return status_; }

 private:
  const ClusteredTable* table_;
  BPlusTree::Cursor cursor_;
  Status status_;
};

ClusteredTable::ClusteredTable(Schema schema, std::vector<int> key_columns,
                               Compression mode)
    : schema_(std::move(schema)),
      key_columns_(std::move(key_columns)),
      mode_(mode),
      row_mode_(mode == Compression::kNone ? Compression::kNone
                                           : Compression::kRow) {}

Status ClusteredTable::Insert(const Row& row) {
  Row key;
  key.reserve(key_columns_.size());
  for (int c : key_columns_) {
    if (c < 0 || c >= static_cast<int>(row.size())) {
      return Status::Internal("clustered key column out of range");
    }
    key.push_back(row[c]);
  }
  std::string payload;
  HTG_RETURN_IF_ERROR(EncodeRow(schema_, row, row_mode_, &payload));
  tree_.Insert(std::move(key), std::move(payload));
  return Status::OK();
}

StorageStats ClusteredTable::Stats() const {
  StorageStats stats;
  stats.rows = tree_.size();
  stats.pages = tree_.num_nodes();
  stats.data_bytes = tree_.payload_bytes() + tree_.ApproxNodeBytes();
  return stats;
}

std::unique_ptr<RowIterator> ClusteredTable::NewScan() {
  return std::make_unique<ScanIterator>(this, tree_.First());
}

Result<std::unique_ptr<RowIterator>> ClusteredTable::NewScanFrom(
    const Row& prefix) {
  if (prefix.size() > key_columns_.size()) {
    return Status::InvalidArgument("seek key longer than clustered key");
  }
  return {std::make_unique<ScanIterator>(this, tree_.Seek(prefix))};
}

void ClusteredTable::Truncate() { tree_.Clear(); }

}  // namespace htg::storage
