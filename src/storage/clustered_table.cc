#include "storage/clustered_table.h"

#include "common/crc32c.h"
#include "common/string_util.h"

namespace htg::storage {

class ClusteredTable::ScanIterator : public RowIterator {
 public:
  ScanIterator(const ClusteredTable* table, BPlusTree::Cursor cursor)
      : table_(table), cursor_(cursor) {}

  bool Next(Row* row) override {
    if (!cursor_.Valid()) return false;
    // Verify and strip the per-payload CRC32C trailer appended by Insert.
    const std::string& payload = cursor_.payload();
    if (payload.size() < 4) {
      status_ = Status::Corruption("clustered leaf payload too small");
      return false;
    }
    const size_t body = payload.size() - 4;
    uint32_t expected = 0;
    for (int i = 0; i < 4; ++i) {
      expected |= static_cast<uint32_t>(
                      static_cast<unsigned char>(payload[body + i]))
                  << (8 * i);
    }
    const uint32_t actual = Crc32c(payload.data(), body);
    if (expected != actual) {
      status_ = Status::Corruption(
          StringPrintf("clustered leaf checksum mismatch "
                       "(stored %08x, computed %08x)",
                       expected, actual));
      return false;
    }
    status_ = DecodeRow(table_->schema_, table_->row_mode_,
                        Slice(payload.data(), body), row);
    if (!status_.ok()) return false;
    cursor_.Advance();
    return true;
  }

  Status status() const override { return status_; }

 private:
  const ClusteredTable* table_;
  BPlusTree::Cursor cursor_;
  Status status_;
};

ClusteredTable::ClusteredTable(Schema schema, std::vector<int> key_columns,
                               Compression mode)
    : schema_(std::move(schema)),
      key_columns_(std::move(key_columns)),
      mode_(mode),
      row_mode_(mode == Compression::kNone ? Compression::kNone
                                           : Compression::kRow) {}

Status ClusteredTable::Insert(const Row& row) {
  Row key;
  key.reserve(key_columns_.size());
  for (int c : key_columns_) {
    if (c < 0 || c >= static_cast<int>(row.size())) {
      return Status::Internal("clustered key column out of range");
    }
    key.push_back(row[c]);
  }
  std::string payload;
  HTG_RETURN_IF_ERROR(EncodeRow(schema_, row, row_mode_, &payload));
  // Per-payload CRC32C trailer: leaf payloads are the clustered table's
  // durable row images, so scans detect in-memory or spilled corruption the
  // same way page decodes do.
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  tree_.Insert(std::move(key), std::move(payload));
  return Status::OK();
}

StorageStats ClusteredTable::Stats() const {
  StorageStats stats;
  stats.rows = tree_.size();
  stats.pages = tree_.num_nodes();
  stats.data_bytes = tree_.payload_bytes() + tree_.ApproxNodeBytes();
  return stats;
}

std::unique_ptr<RowIterator> ClusteredTable::NewScan() {
  return std::make_unique<ScanIterator>(this, tree_.First());
}

Result<std::unique_ptr<RowIterator>> ClusteredTable::NewScanFrom(
    const Row& prefix) {
  if (prefix.size() > key_columns_.size()) {
    return Status::InvalidArgument("seek key longer than clustered key");
  }
  return {std::make_unique<ScanIterator>(this, tree_.Seek(prefix))};
}

void ClusteredTable::Truncate() { tree_.Clear(); }

}  // namespace htg::storage
