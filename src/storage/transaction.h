#pragma once

#include <functional>
#include <vector>

namespace htg::storage {

// A lightweight unit of work with compensation-based rollback. Loaders and
// INSERT..SELECT register undo actions (truncate a table back to its prior
// row count, delete a freshly created FileStream blob); Rollback() runs
// them in reverse order. This is the "full transactional control" property
// the paper highlights for FileStream data, scoped to what an in-process
// analytical engine needs (no concurrent writers, no durability).
class Transaction {
 public:
  Transaction() = default;
  ~Transaction() {
    if (active_) Rollback();
  }

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  // Registers an action to run if the transaction rolls back.
  void OnRollback(std::function<void()> undo) {
    undo_actions_.push_back(std::move(undo));
  }

  void Commit() {
    undo_actions_.clear();
    active_ = false;
  }

  void Rollback() {
    for (auto it = undo_actions_.rbegin(); it != undo_actions_.rend(); ++it) {
      (*it)();
    }
    undo_actions_.clear();
    active_ = false;
  }

  bool active() const { return active_; }

 private:
  std::vector<std::function<void()>> undo_actions_;
  bool active_ = true;
};

}  // namespace htg::storage

