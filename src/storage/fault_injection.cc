#include "storage/fault_injection.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace htg::storage {

uint64_t FaultPlan::SeedFromEnv() {
  const char* env = std::getenv("HTG_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 0;
  return std::strtoull(env, nullptr, 10);
}

int64_t FaultInjectingVfs::ops_seen() const {
  MutexLock lock(&mu_);
  return ops_;
}

bool FaultInjectingVfs::fault_fired() const {
  MutexLock lock(&mu_);
  return fired_;
}

void FaultInjectingVfs::Reset(FaultPlan plan) {
  MutexLock lock(&mu_);
  plan_ = plan;
  read_plan_ = ReadFaultPlan{};
  ops_ = 0;
  reads_ = 0;
  transient_left_ = -1;
  crashed_ = false;
  fired_ = false;
}

int64_t FaultInjectingVfs::reads_seen() const {
  MutexLock lock(&mu_);
  return reads_;
}

void FaultInjectingVfs::SetReadFaults(ReadFaultPlan plan) {
  MutexLock lock(&mu_);
  read_plan_ = plan;
  reads_ = 0;
}

Status FaultInjectingVfs::NextRead(const std::string& what,
                                   uint64_t* corrupt_seed) {
  *corrupt_seed = 0;
  MutexLock lock(&mu_);
  const int64_t index = reads_++;
  if (read_plan_.kind == ReadFaultPlan::Kind::kNone ||
      index != read_plan_.fail_read_at) {
    return Status::OK();
  }
  fired_ = true;
  if (read_plan_.kind == ReadFaultPlan::Kind::kFail) {
    return Status::IOError("injected read fault (" + what + ")");
  }
  // kCorrupt: the read itself "succeeds"; the caller flips a byte.
  *corrupt_seed = read_plan_.seed | 1;  // non-zero flags corruption
  return Status::OK();
}

Status FaultInjectingVfs::NextOp(const std::string& what,
                                 int64_t* torn_prefix) {
  if (torn_prefix != nullptr) *torn_prefix = -1;
  MutexLock lock(&mu_);
  if (crashed_) {
    return Status::IOError("simulated crash: I/O after fault point (" + what +
                           ")");
  }
  // A pending transient fault keeps failing the retried op until it clears.
  if (transient_left_ > 0) {
    --transient_left_;
    return Status::Transient("injected transient EIO (" + what + ")");
  }
  const int64_t index = ops_++;
  if (plan_.kind == FaultPlan::Kind::kNone || index != plan_.fail_at_op) {
    return Status::OK();
  }
  fired_ = true;
  switch (plan_.kind) {
    case FaultPlan::Kind::kNone:
      return Status::OK();
    case FaultPlan::Kind::kTransientEio:
      transient_left_ = plan_.transient_failures - 1;
      return Status::Transient("injected transient EIO (" + what + ")");
    case FaultPlan::Kind::kTornWrite:
      if (plan_.crash_after_fault) crashed_ = true;
      if (torn_prefix != nullptr) {
        // Seed-dependent torn point; the actual length is clamped to the
        // append size at the write site.
        *torn_prefix = static_cast<int64_t>(plan_.seed % 4093 + 1);
      }
      return Status::IOError("injected torn write (" + what + ")");
    case FaultPlan::Kind::kNoSpace:
      if (plan_.crash_after_fault) crashed_ = true;
      return Status::IOError("injected ENOSPC (" + what + ")");
    case FaultPlan::Kind::kSyncFail:
    case FaultPlan::Kind::kFail:
      if (plan_.crash_after_fault) crashed_ = true;
      return Status::IOError("injected I/O fault (" + what + ")");
  }
  return Status::OK();
}

// Wraps a base WritableFile so Append/Sync/Close consult the shared plan.
class FaultInjectingVfs::FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(FaultInjectingVfs* vfs,
                     std::unique_ptr<WritableFile> base, std::string path)
      : vfs_(vfs), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    int64_t torn_prefix = -1;
    const Status fault = vfs_->NextOp("append " + path_, &torn_prefix);
    if (fault.ok()) return base_->Append(data);
    if (torn_prefix >= 0) {
      // Torn write: persist a strict prefix, then report the failure.
      const size_t n =
          std::min(data.size() - (data.empty() ? 0 : 1),
                   static_cast<size_t>(torn_prefix));
      HTG_IGNORE_STATUS(base_->Append(data.substr(0, n)));
      // The torn prefix really reaches the platter.
      HTG_IGNORE_STATUS(base_->Sync());
    }
    return fault;
  }

  Status Sync() override {
    const Status fault = vfs_->NextOp("fsync " + path_, nullptr);
    if (!fault.ok()) return fault;
    return base_->Sync();
  }

  Status Close() override {
    const Status fault = vfs_->NextOp("close " + path_, nullptr);
    if (!fault.ok()) {
      HTG_IGNORE_STATUS(base_->Close());
      return fault;
    }
    return base_->Close();
  }

 private:
  FaultInjectingVfs* vfs_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

Result<std::unique_ptr<WritableFile>> FaultInjectingVfs::NewWritableFile(
    const std::string& path) {
  HTG_RETURN_IF_ERROR(NextOp("create " + path, nullptr));
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       base_->NewWritableFile(path));
  return {std::make_unique<FaultyWritableFile>(this, std::move(file), path)};
}

Result<std::unique_ptr<WritableFile>> FaultInjectingVfs::NewAppendableFile(
    const std::string& path) {
  HTG_RETURN_IF_ERROR(NextOp("open-append " + path, nullptr));
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       base_->NewAppendableFile(path));
  return {std::make_unique<FaultyWritableFile>(this, std::move(file), path)};
}

// Wraps a base RandomAccessFile so every ReadAt consults the read plan.
class FaultInjectingVfs::FaultyRandomAccessFile : public RandomAccessFile {
 public:
  FaultyRandomAccessFile(FaultInjectingVfs* vfs,
                         std::unique_ptr<RandomAccessFile> base,
                         std::string path)
      : vfs_(vfs), base_(std::move(base)), path_(std::move(path)) {}

  Result<size_t> ReadAt(uint64_t offset, char* buf,
                        size_t len) const override {
    uint64_t corrupt_seed = 0;
    HTG_RETURN_IF_ERROR(vfs_->NextRead("pread " + path_, &corrupt_seed));
    HTG_ASSIGN_OR_RETURN(const size_t got, base_->ReadAt(offset, buf, len));
    if (corrupt_seed != 0 && got > 0) {
      // Flip one seed-chosen byte of the result — silent data corruption
      // the page checksum (not the read path) must detect.
      buf[corrupt_seed % got] ^= 0x40;
    }
    return got;
  }

  uint64_t size() const override { return base_->size(); }

 private:
  FaultInjectingVfs* vfs_;
  std::unique_ptr<RandomAccessFile> base_;
  std::string path_;
};

Result<std::unique_ptr<RandomAccessFile>>
FaultInjectingVfs::NewRandomAccessFile(const std::string& path) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                       base_->NewRandomAccessFile(path));
  return {std::make_unique<FaultyRandomAccessFile>(this, std::move(file),
                                                   path)};
}

Result<std::string> FaultInjectingVfs::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

Status FaultInjectingVfs::RenameFile(const std::string& from,
                                     const std::string& to) {
  HTG_RETURN_IF_ERROR(NextOp("rename " + from, nullptr));
  return base_->RenameFile(from, to);
}

Status FaultInjectingVfs::DeleteFile(const std::string& path) {
  HTG_RETURN_IF_ERROR(NextOp("unlink " + path, nullptr));
  return base_->DeleteFile(path);
}

Status FaultInjectingVfs::CreateDirs(const std::string& path) {
  // Not counted: directory creation happens once per store, before any
  // interesting durability point.
  return base_->CreateDirs(path);
}

bool FaultInjectingVfs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectingVfs::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Result<std::vector<std::string>> FaultInjectingVfs::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

Status FaultInjectingVfs::SyncDir(const std::string& path) {
  HTG_RETURN_IF_ERROR(NextOp("fsync dir " + path, nullptr));
  return base_->SyncDir(path);
}

}  // namespace htg::storage
