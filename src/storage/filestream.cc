#include "storage/filestream.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/crc32c.h"
#include "common/string_util.h"

namespace htg::storage {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kWalName[] = "wal.log";
constexpr char kManifestHeader[] = "HTGFS-MANIFEST v1";

}  // namespace

Result<size_t> FileStreamReader::GetBytes(uint64_t offset, char* buf,
                                          size_t len) {
  if (offset >= size_) return size_t{0};
  if (pool_ == nullptr) return file_->ReadAt(offset, buf, len);
  // Pooled: copy out of pinned chunk frames, spanning chunk boundaries
  // as needed. Sequential pagers hit the same frame chunk_bytes_/len
  // times in a row; wrap-around re-reads hit every frame that is still
  // resident.
  size_t done = 0;
  while (done < len && offset + done < size_) {
    const uint64_t pos = offset + done;
    const uint64_t chunk_no = pos / chunk_bytes_;
    const size_t in_chunk = static_cast<size_t>(pos % chunk_bytes_);
    HTG_ASSIGN_OR_RETURN(PageGuard chunk, pool_->Fetch(pool_file_id_,
                                                       chunk_no));
    const Slice data = chunk.data();
    if (in_chunk >= data.size()) break;
    const size_t n = std::min(len - done, data.size() - in_chunk);
    std::memcpy(buf + done, data.data() + in_chunk, n);
    done += n;
  }
  return done;
}

Result<std::unique_ptr<FileStreamStore>> FileStreamStore::Open(
    std::string root, FileStreamOptions options) {
  Vfs* vfs = options.vfs != nullptr ? options.vfs : Vfs::Default();
  HTG_RETURN_IF_ERROR(vfs->CreateDirs(root));
  std::unique_ptr<FileStreamStore> store(
      new FileStreamStore(std::move(root), options, vfs));
  HTG_RETURN_IF_ERROR(store->Recover());
  return store;
}

Status FileStreamStore::LoadManifest() {
  const std::string path = root_ + "/" + kManifestName;
  if (!vfs_->FileExists(path)) return Status::OK();
  HTG_ASSIGN_OR_RETURN(std::string data, vfs_->ReadFileToString(path));
  size_t pos = 0;
  bool first = true;
  while (pos < data.size()) {
    size_t eol = data.find('\n', pos);
    if (eol == std::string::npos) eol = data.size();
    const std::string_view line(data.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line != kManifestHeader) {
        return Status::Corruption("filestream manifest header mismatch");
      }
      continue;
    }
    const std::vector<std::string_view> fields = Split(line, ' ');
    if (fields.size() != 3) {
      return Status::Corruption("filestream manifest line malformed");
    }
    HTG_ASSIGN_OR_RETURN(int64_t size, ParseInt64(fields[1]));
    HTG_ASSIGN_OR_RETURN(int64_t crc, ParseInt64(fields[2]));
    manifest_[std::string(fields[0])] = {static_cast<uint64_t>(size),
                                         static_cast<uint32_t>(crc)};
  }
  return Status::OK();
}

Status FileStreamStore::WriteManifestLocked() {
  std::string data(kManifestHeader);
  data.push_back('\n');
  for (const auto& [name, meta] : manifest_) {
    data += StringPrintf("%s %llu %llu\n", name.c_str(),
                         static_cast<unsigned long long>(meta.size),
                         static_cast<unsigned long long>(meta.crc));
  }
  return WriteFileAtomic(vfs_, root_ + "/" + kManifestName, data);
}

Status FileStreamStore::Recover() {
  // Held across the whole replay: recovery runs before Open() returns,
  // so there is no contention, and locking up front lets the analysis
  // check the manifest_/wal_/next_id_ rebuild like any other mutation.
  MutexLock lock(&mu_);
  HTG_RETURN_IF_ERROR(LoadManifest());

  std::vector<WalRecord> log;
  HTG_ASSIGN_OR_RETURN(wal_,
                       WriteAheadLog::Open(vfs_, root_ + "/" + kWalName, &log));

  // Replay: fold commits into the manifest, collect unresolved intents.
  std::map<std::string, BlobMeta> pending_creates;
  std::map<std::string, bool> pending_deletes;
  for (const WalRecord& record : log) {
    switch (record.type) {
      case WalRecordType::kIntentCreate:
        pending_creates[record.name] = {record.size, record.content_crc};
        break;
      case WalRecordType::kCommitCreate: {
        auto it = pending_creates.find(record.name);
        if (it != pending_creates.end()) {
          manifest_[record.name] = it->second;
          pending_creates.erase(it);
        }
        break;
      }
      case WalRecordType::kIntentDelete:
        pending_deletes[record.name] = true;
        break;
      case WalRecordType::kCommitDelete:
        manifest_.erase(record.name);
        pending_deletes.erase(record.name);
        break;
      case WalRecordType::kTxnCommit:
      case WalRecordType::kTxnAbort:
        // Advisory MVCC outcome markers; blob state is governed entirely
        // by the intent/commit records above.
        break;
    }
  }

  // Unresolved creates: roll forward iff the blob reached the platter
  // complete (size and CRC32C match the intent); otherwise roll back.
  for (const auto& [name, meta] : pending_creates) {
    const std::string path = root_ + "/" + name;
    bool complete = false;
    if (vfs_->FileExists(path)) {
      Result<std::string> content = vfs_->ReadFileToString(path);
      complete = content.ok() && content->size() == meta.size &&
                 Crc32c(*content) == meta.crc;
    }
    if (complete) {
      manifest_[name] = meta;
      ++recovery_stats_.creates_rolled_forward;
    } else {
      if (vfs_->FileExists(path)) HTG_IGNORE_STATUS(vfs_->DeleteFile(path));
      ++recovery_stats_.creates_rolled_back;
    }
  }

  // Unresolved deletes always roll forward — unlink is idempotent.
  for (const auto& [name, unused] : pending_deletes) {
    (void)unused;
    const std::string path = root_ + "/" + name;
    if (vfs_->FileExists(path)) HTG_IGNORE_STATUS(vfs_->DeleteFile(path));
    manifest_.erase(name);
    ++recovery_stats_.deletes_completed;
  }

  // The catalog must not claim blobs the filesystem does not hold (a crash
  // between Clear()'s manifest rewrite and its unlink sweep, or external
  // tampering with the store directory).
  for (auto it = manifest_.begin(); it != manifest_.end();) {
    if (!vfs_->FileExists(root_ + "/" + it->first)) {
      it = manifest_.erase(it);
      ++recovery_stats_.missing_blobs_dropped;
    } else {
      ++it;
    }
  }

  // Sweep orphans: temp files from torn writes and files reachable from
  // neither manifest nor log (the store owns its root).
  HTG_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                       vfs_->ListDir(root_));
  for (const std::string& name : entries) {
    if (name == kManifestName || name == kWalName) continue;
    if (manifest_.count(name) > 0) continue;
    HTG_IGNORE_STATUS(vfs_->DeleteFile(root_ + "/" + name));
    ++recovery_stats_.orphans_removed;
  }

  // Checkpoint: the manifest now holds the recovered truth; start a fresh
  // log so old intents are not replayed twice.
  HTG_RETURN_IF_ERROR(WriteManifestLocked());
  HTG_RETURN_IF_ERROR(wal_->Reset());

  // Continue blob numbering after the largest recovered id.
  for (const auto& [name, meta] : manifest_) {
    (void)meta;
    const uint64_t id = std::strtoull(name.c_str(), nullptr, 10);
    if (id + 1 > next_id_) next_id_ = id + 1;
  }
  return Status::OK();
}

Result<std::string> FileStreamStore::CreateBlob(const std::string& name_hint,
                                                std::string_view bytes) {
  std::string safe_hint;
  for (char c : name_hint) {
    safe_hint.push_back(
        (isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_')
            ? c
            : '_');
  }

  MutexLock lock(&mu_);
  const std::string name =
      StringPrintf("%06llu_", static_cast<unsigned long long>(next_id_++)) +
      safe_hint;
  const std::string path = root_ + "/" + name;
  const BlobMeta meta{bytes.size(), Crc32c(bytes)};

  // Intent -> fsync -> temp write -> fsync -> rename -> commit. Transient
  // device faults retry the whole sequence (duplicate intents are resolved
  // by replay: the last one wins).
  const Status status = RunWithRetries(options_.retry, [&]() -> Status {
    WalRecord intent;
    intent.type = WalRecordType::kIntentCreate;
    intent.name = name;
    intent.size = meta.size;
    intent.content_crc = meta.crc;
    HTG_RETURN_IF_ERROR(wal_->Append(intent, /*sync=*/true));
    HTG_RETURN_IF_ERROR(WriteFileAtomic(vfs_, path, bytes));
    WalRecord commit;
    commit.type = WalRecordType::kCommitCreate;
    commit.name = name;
    return wal_->Append(commit, /*sync=*/false);
  });
  if (!status.ok()) return status;
  manifest_[name] = meta;
  return path;
}

Result<std::string> FileStreamStore::ImportFile(const std::string& source_path,
                                                const std::string& name_hint) {
  if (!vfs_->FileExists(source_path)) {
    return Status::NotFound("bulk import source missing: " + source_path);
  }
  HTG_ASSIGN_OR_RETURN(std::string content,
                       vfs_->ReadFileToString(source_path));
  return CreateBlob(name_hint, content);
}

Result<std::string> FileStreamStore::NameForPath(
    const std::string& path) const {
  const std::string prefix = root_ + "/";
  if (path.rfind(prefix, 0) != 0 ||
      path.find('/', prefix.size()) != std::string::npos) {
    return Status::NotFound("not a filestream blob path: " + path);
  }
  return path.substr(prefix.size());
}

Result<std::unique_ptr<FileStreamReader>> FileStreamStore::OpenStream(
    const std::string& path) const {
  BufferPool* pool = options_.buffer_pool;
  if (pool != nullptr) {
    MutexLock lock(&mu_);
    auto it = pooled_.find(path);
    if (it == pooled_.end()) {
      Result<std::unique_ptr<RandomAccessFile>> file =
          vfs_->NewRandomAccessFile(path);
      if (!file.ok()) {
        return Status::NotFound("filestream blob missing: " + path);
      }
      const uint64_t size = (*file)->size();
      PagedFileOptions chunked;
      chunked.fixed_page_bytes = options_.pool_chunk_bytes;
      const uint32_t file_id =
          pool->RegisterFile(std::move(*file), std::move(chunked));
      it = pooled_.emplace(path, std::make_pair(file_id, size)).first;
    }
    return std::unique_ptr<FileStreamReader>(new FileStreamReader(
        nullptr, it->second.second, pool, it->second.first,
        options_.pool_chunk_bytes));
  }
  Result<std::unique_ptr<RandomAccessFile>> file =
      vfs_->NewRandomAccessFile(path);
  if (!file.ok()) {
    return Status::NotFound("filestream blob missing: " + path);
  }
  const uint64_t size = (*file)->size();
  return std::unique_ptr<FileStreamReader>(new FileStreamReader(
      std::move(*file), size, nullptr, 0, 0));
}

Result<std::string> FileStreamStore::ReadAll(const std::string& path) const {
  HTG_ASSIGN_OR_RETURN(std::string content, vfs_->ReadFileToString(path));
  if (options_.verify_on_read) {
    Result<std::string> name = NameForPath(path);
    if (name.ok()) {
      MutexLock lock(&mu_);
      auto it = manifest_.find(*name);
      if (it != manifest_.end() && (content.size() != it->second.size ||
                                    Crc32c(content) != it->second.crc)) {
        return Status::Corruption("filestream blob checksum mismatch: " +
                                  path);
      }
    }
  }
  return content;
}

Result<uint64_t> FileStreamStore::BlobSize(const std::string& path) const {
  HTG_ASSIGN_OR_RETURN(std::string name, NameForPath(path));
  MutexLock lock(&mu_);
  auto it = manifest_.find(name);
  if (it == manifest_.end()) {
    return Status::NotFound("filestream blob missing: " + path);
  }
  return it->second.size;
}

Status FileStreamStore::VerifyBlob(const std::string& path) const {
  HTG_ASSIGN_OR_RETURN(std::string name, NameForPath(path));
  BlobMeta meta;
  {
    MutexLock lock(&mu_);
    auto it = manifest_.find(name);
    if (it == manifest_.end()) {
      return Status::NotFound("filestream blob missing: " + path);
    }
    meta = it->second;
  }
  HTG_ASSIGN_OR_RETURN(std::string content, vfs_->ReadFileToString(path));
  if (content.size() != meta.size || Crc32c(content) != meta.crc) {
    return Status::Corruption("filestream blob checksum mismatch: " + path);
  }
  return Status::OK();
}

std::vector<std::string> FileStreamStore::ListBlobs() const {
  MutexLock lock(&mu_);
  std::vector<std::string> paths;
  paths.reserve(manifest_.size());
  for (const auto& [name, meta] : manifest_) {
    (void)meta;
    paths.push_back(root_ + "/" + name);
  }
  return paths;
}

Status FileStreamStore::Delete(const std::string& path) {
  HTG_ASSIGN_OR_RETURN(std::string name, NameForPath(path));
  MutexLock lock(&mu_);
  if (manifest_.count(name) == 0) {
    return Status::IOError("cannot delete filestream blob: " + path);
  }
  const Status status = RunWithRetries(options_.retry, [&]() -> Status {
    WalRecord intent;
    intent.type = WalRecordType::kIntentDelete;
    intent.name = name;
    HTG_RETURN_IF_ERROR(wal_->Append(intent, /*sync=*/true));
    const Status unlinked = vfs_->DeleteFile(path);
    if (!unlinked.ok() && !unlinked.IsNotFound()) return unlinked;
    WalRecord commit;
    commit.type = WalRecordType::kCommitDelete;
    commit.name = name;
    return wal_->Append(commit, /*sync=*/false);
  });
  if (!status.ok()) return status;
  manifest_.erase(name);
  UnpoolLocked(path);
  return Status::OK();
}

Status FileStreamStore::LogTxnOutcome(uint64_t txn_id, bool committed) {
  MutexLock lock(&mu_);
  WalRecord record;
  record.type =
      committed ? WalRecordType::kTxnCommit : WalRecordType::kTxnAbort;
  record.size = txn_id;
  return wal_->Append(record, /*sync=*/false);
}

uint64_t FileStreamStore::TotalBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [name, meta] : manifest_) {
    (void)name;
    total += meta.size;
  }
  return total;
}

Status FileStreamStore::Clear() {
  MutexLock lock(&mu_);
  // Catalog first, files second: once the empty manifest is durable, a
  // crash mid-sweep leaves only orphans, which the next Open removes. The
  // reverse order would leave the catalog claiming vanished blobs.
  manifest_.clear();
  if (options_.buffer_pool != nullptr) {
    for (const auto& [path, reg] : pooled_) {
      (void)path;
      options_.buffer_pool->UnregisterFile(reg.first);
    }
    pooled_.clear();
  }
  HTG_RETURN_IF_ERROR(WriteManifestLocked());
  HTG_RETURN_IF_ERROR(wal_->Reset());
  Result<std::vector<std::string>> entries = vfs_->ListDir(root_);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      if (name == kManifestName || name == kWalName) continue;
      HTG_IGNORE_STATUS(vfs_->DeleteFile(root_ + "/" + name));
    }
  }
  return Status::OK();
}

FileStreamStore::~FileStreamStore() {
  if (options_.buffer_pool == nullptr) return;
  MutexLock lock(&mu_);
  for (const auto& [path, reg] : pooled_) {
    (void)path;
    options_.buffer_pool->UnregisterFile(reg.first);
  }
  pooled_.clear();
}

void FileStreamStore::UnpoolLocked(const std::string& path) {
  auto it = pooled_.find(path);
  if (it == pooled_.end()) return;
  options_.buffer_pool->UnregisterFile(it->second.first);
  pooled_.erase(it);
}

}  // namespace htg::storage
