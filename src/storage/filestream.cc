#include "storage/filestream.h"

#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/string_util.h"

namespace htg::storage {

namespace fs = std::filesystem;

FileStreamReader::~FileStreamReader() {
  if (file_ != nullptr) fclose(file_);
}

Result<size_t> FileStreamReader::GetBytes(uint64_t offset, char* buf,
                                          size_t len) {
  if (offset >= size_) return size_t{0};
  if (offset != pos_) {
    if (fseeko(file_, static_cast<off_t>(offset), SEEK_SET) != 0) {
      return Status::IOError("seek failed in filestream blob");
    }
    pos_ = offset;
  }
  const size_t n = fread(buf, 1, len, file_);
  if (n == 0 && ferror(file_)) {
    return Status::IOError("read failed in filestream blob");
  }
  pos_ += n;
  return n;
}

Result<std::unique_ptr<FileStreamStore>> FileStreamStore::Open(
    std::string root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Status::IOError("cannot create filestream root " + root + ": " +
                           ec.message());
  }
  return std::unique_ptr<FileStreamStore>(new FileStreamStore(std::move(root)));
}

Result<std::string> FileStreamStore::CreateBlob(const std::string& name_hint,
                                                std::string_view bytes) {
  std::string safe_hint;
  for (char c : name_hint) {
    safe_hint.push_back(
        (isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_')
            ? c
            : '_');
  }
  const std::string path =
      root_ + "/" + StringPrintf("%06llu_",
                                 static_cast<unsigned long long>(next_id_++)) +
      safe_hint;
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create filestream blob " + path);
  }
  if (!bytes.empty() && fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    fclose(f);
    return Status::IOError("short write to filestream blob " + path);
  }
  fclose(f);
  return path;
}

Result<std::string> FileStreamStore::ImportFile(const std::string& source_path,
                                                const std::string& name_hint) {
  std::error_code ec;
  if (!fs::exists(source_path, ec)) {
    return Status::NotFound("bulk import source missing: " + source_path);
  }
  HTG_ASSIGN_OR_RETURN(std::string path, CreateBlob(name_hint, ""));
  fs::copy_file(source_path, path, fs::copy_options::overwrite_existing, ec);
  if (ec) {
    return Status::IOError("bulk import failed: " + ec.message());
  }
  return path;
}

Result<std::unique_ptr<FileStreamReader>> FileStreamStore::OpenStream(
    const std::string& path) const {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("filestream blob missing: " + path);
  }
  std::error_code ec;
  const uint64_t size = fs::file_size(path, ec);
  if (ec) {
    fclose(f);
    return Status::IOError("cannot stat filestream blob: " + path);
  }
  return std::unique_ptr<FileStreamReader>(new FileStreamReader(f, size));
}

Result<std::string> FileStreamStore::ReadAll(const std::string& path) const {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<FileStreamReader> reader,
                       OpenStream(path));
  std::string out;
  out.resize(reader->size());
  HTG_ASSIGN_OR_RETURN(size_t n,
                       reader->GetBytes(0, out.data(), out.size()));
  out.resize(n);
  return out;
}

Result<uint64_t> FileStreamStore::BlobSize(const std::string& path) const {
  std::error_code ec;
  const uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("filestream blob missing: " + path);
  return size;
}

Status FileStreamStore::Delete(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::IOError("cannot delete filestream blob: " + path);
  }
  return Status::OK();
}

uint64_t FileStreamStore::TotalBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

Status FileStreamStore::Clear() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    fs::remove_all(entry.path(), ec);
  }
  return Status::OK();
}

}  // namespace htg::storage
