#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/synchronization.h"
#include "storage/vfs.h"

namespace htg::storage {

// A fixed-capacity page cache between the storage layer and the VFS — the
// buffer pool the paper's thesis assumes the engine provides ("the engine
// manages storage, caching, and parallelism for you", §5). Every paged
// read of heap pages, clustered-leaf pages, and FileStream chunks goes
// through Fetch(); repeated scans and B+-tree leaf walks hit cached frames
// instead of re-reading through the VFS.
//
// Shape:
//   * Frames hold whole serialized pages (variable length — engine pages
//     are self-contained strings), so capacity is budgeted in bytes
//     (HTG_BUFFER_POOL_MB, default 64 MiB), not frame counts.
//   * Pages are immutable once sealed; a frame's bytes never change after
//     fill. "Dirty" therefore means "not yet written back to the file",
//     not "modified" — the write-back discipline of an append-only spill
//     file (see tablespace.h for the WAL-ordered write path).
//   * Hit path: shared lock on the frame map + two atomics (pin count,
//     CLOCK ref bit). Only misses, inserts, and eviction take the
//     exclusive lock, so concurrent morsel workers scanning a cached
//     table never serialize on the pool.
//   * Eviction is CLOCK (second chance): pinned frames are skipped,
//     referenced frames get their ref bit cleared, and a dirty victim is
//     written back (in page order, WAL record first) before it is
//     dropped. If every frame is pinned the pool overcommits rather than
//     deadlocking, and counts it.
//   * A miss fills the frame via RandomAccessFile::ReadAt and, for
//     checksummed files, verifies the page's CRC32C trailer before the
//     frame becomes visible. A read fault or checksum mismatch caches
//     nothing — an injected fault can never leave a poisoned frame.
//
// Observability (PR-4 metrics registry): counters bufferpool.hit / .miss
// / .evict / .writeback / .checksum_failure / .overcommit and gauges
// bufferpool.bytes / .frames / .pinned, so EXPLAIN ANALYZE and BENCH JSON
// expose cache behaviour per query and per bench.
class BufferPool;

// RAII pin on one cached page. While the guard is alive the frame cannot
// be evicted and data() stays valid; destruction (or Release) unpins.
// Scan iterators hold one guard per page they are positioned on, instead
// of raw spans into table memory.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return frame_ != nullptr; }

  // The full page image (for checksummed files this includes the CRC32C
  // trailer, which was verified on fill).
  Slice data() const;

  uint64_t page_no() const;

  // Unpins early; the guard becomes invalid.
  void Release();

 private:
  friend class BufferPool;
  struct Frame;
  explicit PageGuard(Frame* frame) : frame_(frame) {}

  Frame* frame_ = nullptr;
};

struct BufferPoolOptions {
  // Total bytes of cached page images the pool may hold.
  size_t capacity_bytes = 64ull << 20;
};

// Reads HTG_BUFFER_POOL_MB (mebibytes; default 64, minimum 1).
size_t BufferPoolCapacityFromEnv();

// Per-registered-file behaviour.
struct PagedFileOptions {
  // Pages end in a 4-byte CRC32C trailer, verified on every miss-fill
  // (heap pages from PageBuilder::Finish and clustered leaf pages do;
  // FileStream chunk caching does not — blobs carry a whole-file CRC in
  // the store manifest instead).
  bool checksummed = false;

  // > 0: the file is paged as fixed-size chunks (page n covers bytes
  // [n*fixed_page_bytes, ...)) — the FileStream chunk-cache mode. The
  // file size must be final at registration. 0: page extents are
  // announced incrementally with AddPageExtent (append-only table files).
  size_t fixed_page_bytes = 0;

  // Write-back sink for dirty frames. The pool invokes it in strictly
  // ascending page order with no gaps (append-only files depend on
  // this), while holding its exclusive latch: the callback must write
  // the bytes (WAL record first — see TableFile::WritePageOut) and MUST
  // NOT call back into the pool. Required if PutPage(dirty=true) is
  // used.
  std::function<Status(uint64_t page_no, std::string_view bytes)> write_page;
};

class BufferPool {
 public:
  explicit BufferPool(BufferPoolOptions options = {});
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Registers a paged file and returns its pool-wide id. `file` may be
  // null for write-only registration (all pages resident/dirty); Fetch of
  // a non-resident page then fails.
  uint32_t RegisterFile(std::unique_ptr<RandomAccessFile> file,
                        PagedFileOptions options);

  // Drops every frame of the file (dirty frames are discarded — the
  // caller is deleting or truncating the file). All frames must be
  // unpinned.
  void UnregisterFile(uint32_t file_id);

  // Announces that page `page_no` of a variable-length file occupies
  // [offset, offset+length). Re-announcing a page number replaces its
  // extent (tail truncation followed by re-append).
  void AddPageExtent(uint32_t file_id, uint64_t page_no, uint64_t offset,
                     uint32_t length);

  // Pins page (file_id, page_no), filling the frame from the file on
  // miss. Returns Corruption if a checksummed page fails verification;
  // the failed fill is not cached.
  Result<PageGuard> Fetch(uint32_t file_id, uint64_t page_no);

  // Inserts a freshly sealed page image and pins nothing. dirty=true
  // schedules it for write-back through the file's write_page hook; the
  // caller must have announced (or be implied by fixed paging to have)
  // its extent. Eviction to make room may itself write back dirty frames.
  Status PutPage(uint32_t file_id, uint64_t page_no, std::string bytes,
                 bool dirty);

  // Drops one frame (table tail-truncation). A dirty frame is discarded
  // without write-back. The frame must be unpinned.
  void DropPage(uint32_t file_id, uint64_t page_no);

  // Writes back every dirty frame of the file, in page order.
  Status FlushFile(uint32_t file_id);

  // FlushFile over every registered file.
  Status FlushAll();

  // Evicts every unpinned frame; dirty frames are written back first.
  // The cold-cache reset used by the cold-vs-warm bench sweep.
  Status EvictAll();

  size_t bytes_cached() const;
  size_t frames_cached() const;
  size_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  using Frame = PageGuard::Frame;
  struct FileInfo;
  struct ReadSpec;

  static uint64_t Key(uint32_t file_id, uint64_t page_no);

  // Reads + verifies one page image from the file. No locks held.
  Result<std::string> LoadPage(const ReadSpec& spec, uint32_t file_id,
                               uint64_t page_no) const;

  // The following run under an exclusive lock on mu_.
  Status InsertFrameLocked(uint32_t file_id, uint64_t page_no,
                           std::string bytes, bool dirty, Frame** out)
      HTG_REQUIRES(mu_);
  Status EvictForLocked(size_t incoming_bytes) HTG_REQUIRES(mu_);
  Status WriteBackLocked(uint32_t file_id, uint64_t up_to_page)
      HTG_REQUIRES(mu_);
  void RemoveFrameLocked(Frame* frame) HTG_REQUIRES(mu_);

  BufferPoolOptions options_;

  mutable SharedMutex mu_{"BufferPool::mu_"};
  std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames_
      HTG_GUARDED_BY(mu_);
  std::unordered_map<uint32_t, std::unique_ptr<FileInfo>> files_
      HTG_GUARDED_BY(mu_);
  // CLOCK order: frames in insertion order with a sweeping hand.
  std::vector<Frame*> clock_ HTG_GUARDED_BY(mu_);
  size_t hand_ HTG_GUARDED_BY(mu_) = 0;
  size_t bytes_cached_ HTG_GUARDED_BY(mu_) = 0;
  uint32_t next_file_id_ HTG_GUARDED_BY(mu_) = 1;
};

}  // namespace htg::storage
