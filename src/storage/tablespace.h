#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/synchronization.h"
#include "storage/buffer_pool.h"
#include "storage/vfs.h"
#include "storage/wal.h"

namespace htg::storage {

class TableFile;

// The spill home of a database's table storage: one directory of
// append-only paged data files plus a shared write-ahead log, all cached
// through one BufferPool. Tables seal pages *into the pool* (as dirty
// frames); bytes only reach the data files when cache pressure or an
// explicit flush writes them back — small tables never touch disk at all.
//
// Write-back protocol (per page, in strictly ascending page order):
//   1. WAL record (file, page, size, CRC32C of the image) appended
//   2. page image appended to the data file
// The WAL therefore always describes a superset of the data file — a
// write-back torn between (1) and (2) is detectable, and the append
// order *is* the ordering guarantee ("dirty-page write-back ordered
// against the WAL"). Spill files are rebuildable caches of in-memory
// tables, not the durability root (that is the FileStream store's own
// WAL + manifest), so write-back does not fsync.
class TableSpace {
 public:
  // Creates `root` if needed and sweeps stale spill files from a previous
  // incarnation (best effort — leftovers are truncated on reuse anyway).
  static Result<std::unique_ptr<TableSpace>> Open(Vfs* vfs, std::string root,
                                                  BufferPool* pool);

  ~TableSpace();

  // Creates the append-only data file for one table and registers it
  // with the pool (checksummed pages, extent-based).
  Result<std::unique_ptr<TableFile>> CreateTableFile(const std::string& name);

  BufferPool* pool() const { return pool_; }
  Vfs* vfs() const { return vfs_; }
  const std::string& root() const { return root_; }

 private:
  friend class TableFile;

  TableSpace(Vfs* vfs, std::string root, BufferPool* pool)
      : vfs_(vfs), root_(std::move(root)), pool_(pool) {}

  // Appends the write-back intent for one page (no fsync; see the
  // protocol note above). Called with the pool's exclusive latch held.
  Status LogPageWrite(const std::string& file_name, uint64_t page_no,
                      std::string_view bytes);

  Vfs* vfs_;
  std::string root_;
  BufferPool* pool_;

  Mutex wal_mu_{"TableSpace::wal_mu_"};
  std::unique_ptr<WriteAheadLog> wal_
      HTG_GUARDED_BY(wal_mu_);  // created on first write-back
  uint64_t next_file_seq_ HTG_GUARDED_BY(wal_mu_) = 0;
};

// One table's append-only paged spill file. Pages are sealed serialized
// strings with a CRC32C trailer (PageBuilder::Finish format for heaps, a
// concatenated payload run + trailer for clustered leaves); AppendPage
// assigns the next page number and logical offset and caches the image as
// a dirty frame — WritePageOut (the pool's write_page hook) later appends
// it to disk behind a WAL record.
//
// Thread model: one writer (the engine's single-writer-per-table
// contract) calls AppendPage/DropTailPages/Flush; ReadPage runs from any
// morsel worker; WritePageOut runs on whichever thread triggers eviction,
// serialized by the pool's exclusive latch.
class TableFile {
 public:
  ~TableFile();

  TableFile(const TableFile&) = delete;
  TableFile& operator=(const TableFile&) = delete;

  // Seals `bytes` as the next page and returns its page number.
  Result<uint64_t> AppendPage(std::string bytes);

  // Pins the page, reading it back from the data file if evicted.
  Result<PageGuard> ReadPage(uint64_t page_no) const;

  // Drops pages [first_dropped, num_pages) — transaction-rollback tail
  // truncation. Already-flushed bytes become dead space in the data file;
  // the logical append offset never rewinds past the physical EOF.
  Status DropTailPages(uint64_t first_dropped);

  // Writes back every dirty page (cold-cache resets, tests).
  Status Flush();

  uint64_t num_pages() const { return next_page_; }
  uint32_t pool_file_id() const { return file_id_; }

 private:
  friend class TableSpace;

  TableFile(TableSpace* space, std::string name, std::string path)
      : space_(space), name_(std::move(name)), path_(std::move(path)) {}

  // The pool's write_page hook (pool latch held): WAL record, then data
  // append. Must not re-enter the pool.
  Status WritePageOut(uint64_t page_no, std::string_view bytes);

  TableSpace* space_;
  std::string name_;
  std::string path_;
  uint32_t file_id_ = 0;

  // Writer-thread state (single writer per table).
  uint64_t next_page_ = 0;
  uint64_t append_offset_ = 0;
  std::vector<uint64_t> page_offsets_;  // logical offset of each page

  // Write-back state, touched only under the pool latch; flushed_bytes_
  // is atomic so DropTailPages can read the physical EOF without it.
  std::unique_ptr<WritableFile> appender_;
  std::atomic<uint64_t> flushed_bytes_{0};
};

}  // namespace htg::storage
