#include "storage/row_codec.h"

#include <cstring>

#include "common/string_util.h"
#include "common/varint.h"

namespace htg::storage {

namespace {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

const char* GetFixed32(const char* p, const char* limit, uint32_t* v) {
  if (limit - p < 4) return nullptr;
  memcpy(v, p, 4);
  return p + 4;
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

const char* GetFixed64(const char* p, const char* limit, uint64_t* v) {
  if (limit - p < 8) return nullptr;
  memcpy(v, p, 8);
  return p + 8;
}

// Expands ASCII text to UTF-16LE (the NVARCHAR on-disk form).
void AppendUtf16(std::string_view s, std::string* out) {
  out->reserve(out->size() + s.size() * 2);
  for (char c : s) {
    out->push_back(c);
    out->push_back('\0');
  }
}

// Collapses UTF-16LE back to ASCII text.
std::string FromUtf16(std::string_view wide) {
  std::string out;
  out.reserve(wide.size() / 2);
  for (size_t i = 0; i + 1 < wide.size(); i += 2) {
    out.push_back(wide[i]);
  }
  return out;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string_view CompressionName(Compression c) {
  switch (c) {
    case Compression::kNone:
      return "NONE";
    case Compression::kRow:
      return "ROW";
    case Compression::kPage:
      return "PAGE";
  }
  return "?";
}

std::string GuidToBytes(const std::string& guid) {
  std::string out;
  out.reserve(16);
  int hi = -1;
  for (char c : guid) {
    if (c == '-') continue;
    const int d = HexDigit(c);
    if (d < 0) return "";
    if (hi < 0) {
      hi = d;
    } else {
      out.push_back(static_cast<char>((hi << 4) | d));
      hi = -1;
    }
  }
  if (out.size() != 16 || hi >= 0) return "";
  return out;
}

std::string BytesToGuid(std::string_view bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(36);
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (i == 4 || i == 6 || i == 8 || i == 10) out.push_back('-');
    const unsigned char b = static_cast<unsigned char>(bytes[i]);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

void EncodeField(const Column& column, const Value& value, Compression mode,
                 std::string* out) {
  const bool compact = mode != Compression::kNone;
  switch (column.type) {
    case DataType::kBool:
      out->push_back(value.AsBool() ? 1 : 0);
      return;
    case DataType::kInt32:
      if (compact) {
        PutVarintSigned64(out, value.AsInt64());
      } else {
        PutFixed32(out, static_cast<uint32_t>(value.AsInt64()));
      }
      return;
    case DataType::kInt64:
      if (compact) {
        PutVarintSigned64(out, value.AsInt64());
      } else {
        PutFixed64(out, static_cast<uint64_t>(value.AsInt64()));
      }
      return;
    case DataType::kDouble: {
      uint64_t bits;
      const double d = value.AsDouble();
      memcpy(&bits, &d, 8);
      PutFixed64(out, bits);
      return;
    }
    case DataType::kString: {
      const std::string& s = value.AsString();
      if (column.fixed_length > 0 && !compact) {
        // CHAR(n): blank-pad (or truncate) to the declared width.
        std::string padded = s.substr(0, column.fixed_length);
        padded.resize(column.fixed_length, ' ');
        if (column.utf16) {
          AppendUtf16(padded, out);
        } else {
          out->append(padded);
        }
        return;
      }
      std::string_view body = s;
      if (column.fixed_length > 0 && compact) {
        // ROW compression stores fixed-length character data trimmed.
        size_t end = std::min<size_t>(s.size(), column.fixed_length);
        while (end > 0 && s[end - 1] == ' ') --end;
        body = std::string_view(s).substr(0, end);
      }
      // NVARCHAR stores two bytes per character (no Unicode compression
      // in SQL Server 2008).
      std::string wide;
      if (column.utf16) {
        AppendUtf16(body, &wide);
        body = wide;
      }
      if (compact) {
        PutLengthPrefixed(out, body);
      } else {
        PutFixed32(out, static_cast<uint32_t>(body.size()));
        out->append(body);
      }
      return;
    }
    case DataType::kBlob: {
      const std::string& s = value.AsString();
      if (compact) {
        PutLengthPrefixed(out, s);
      } else {
        PutFixed32(out, static_cast<uint32_t>(s.size()));
        out->append(s);
      }
      return;
    }
    case DataType::kGuid: {
      const std::string bytes = GuidToBytes(value.AsString());
      if (bytes.size() == 16) {
        out->push_back(1);
        out->append(bytes);
      } else {
        // Non-canonical GUID text: store verbatim, length-prefixed.
        out->push_back(0);
        PutLengthPrefixed(out, value.AsString());
      }
      return;
    }
  }
}

const char* DecodeField(const Column& column, Compression mode, const char* p,
                        const char* limit, Value* value) {
  const bool compact = mode != Compression::kNone;
  switch (column.type) {
    case DataType::kBool: {
      if (p >= limit) return nullptr;
      *value = Value::Bool(*p != 0);
      return p + 1;
    }
    case DataType::kInt32: {
      if (compact) {
        int64_t v = 0;
        p = GetVarintSigned64(p, limit, &v);
        if (p == nullptr) return nullptr;
        *value = Value::Int32(static_cast<int32_t>(v));
        return p;
      }
      uint32_t v = 0;
      p = GetFixed32(p, limit, &v);
      if (p == nullptr) return nullptr;
      *value = Value::Int32(static_cast<int32_t>(v));
      return p;
    }
    case DataType::kInt64: {
      if (compact) {
        int64_t v = 0;
        p = GetVarintSigned64(p, limit, &v);
        if (p == nullptr) return nullptr;
        *value = Value::Int64(v);
        return p;
      }
      uint64_t v = 0;
      p = GetFixed64(p, limit, &v);
      if (p == nullptr) return nullptr;
      *value = Value::Int64(static_cast<int64_t>(v));
      return p;
    }
    case DataType::kDouble: {
      uint64_t bits = 0;
      p = GetFixed64(p, limit, &bits);
      if (p == nullptr) return nullptr;
      double d;
      memcpy(&d, &bits, 8);
      *value = Value::Double(d);
      return p;
    }
    case DataType::kString: {
      if (column.fixed_length > 0 && !compact) {
        const int width =
            column.utf16 ? column.fixed_length * 2 : column.fixed_length;
        if (limit - p < width) return nullptr;
        std::string_view raw(p, width);
        *value = Value::String(column.utf16 ? FromUtf16(raw)
                                            : std::string(raw));
        return p + width;
      }
      std::string_view body;
      if (compact) {
        p = GetLengthPrefixed(p, limit, &body);
      } else {
        uint32_t len = 0;
        p = GetFixed32(p, limit, &len);
        if (p == nullptr || static_cast<uint32_t>(limit - p) < len) {
          return nullptr;
        }
        body = std::string_view(p, len);
        p += len;
      }
      if (p == nullptr) return nullptr;
      *value = Value::String(column.utf16 ? FromUtf16(body)
                                          : std::string(body));
      return p;
    }
    case DataType::kBlob: {
      std::string_view body;
      if (compact) {
        p = GetLengthPrefixed(p, limit, &body);
        if (p == nullptr) return nullptr;
      } else {
        uint32_t len = 0;
        p = GetFixed32(p, limit, &len);
        if (p == nullptr || static_cast<uint32_t>(limit - p) < len) {
          return nullptr;
        }
        body = std::string_view(p, len);
        p += len;
      }
      *value = Value::Blob(std::string(body));
      return p;
    }
    case DataType::kGuid: {
      if (p >= limit) return nullptr;
      const char tag = *p++;
      if (tag == 1) {
        if (limit - p < 16) return nullptr;
        *value = Value::Guid(BytesToGuid(std::string_view(p, 16)));
        return p + 16;
      }
      std::string_view body;
      p = GetLengthPrefixed(p, limit, &body);
      if (p == nullptr) return nullptr;
      *value = Value::Guid(std::string(body));
      return p;
    }
  }
  return nullptr;
}

Status EncodeRow(const Schema& schema, const Row& row, Compression mode,
                 std::string* out) {
  const int ncols = schema.num_columns();
  if (static_cast<int>(row.size()) != ncols) {
    return Status::Internal(StringPrintf(
        "row width %zu does not match schema width %d", row.size(), ncols));
  }
  const size_t bitmap_offset = out->size();
  out->append((ncols + 7) / 8, '\0');
  for (int i = 0; i < ncols; ++i) {
    if (row[i].is_null()) {
      (*out)[bitmap_offset + i / 8] |= static_cast<char>(1 << (i % 8));
    } else {
      EncodeField(schema.column(i), row[i], mode, out);
    }
  }
  return Status::OK();
}

Status DecodeRow(const Schema& schema, Compression mode, Slice data,
                 Row* row) {
  const int ncols = schema.num_columns();
  const int bitmap_bytes = (ncols + 7) / 8;
  if (static_cast<int>(data.size()) < bitmap_bytes) {
    return Status::Corruption("row shorter than null bitmap");
  }
  const char* bitmap = data.data();
  const char* p = data.data() + bitmap_bytes;
  const char* limit = data.data() + data.size();
  row->clear();
  row->resize(ncols);
  for (int i = 0; i < ncols; ++i) {
    const bool is_null = (bitmap[i / 8] >> (i % 8)) & 1;
    if (is_null) {
      (*row)[i] = Value::Null();
      continue;
    }
    p = DecodeField(schema.column(i), mode, p, limit, &(*row)[i]);
    if (p == nullptr) {
      return Status::Corruption("truncated field in row: " +
                                schema.column(i).name);
    }
  }
  return Status::OK();
}

}  // namespace htg::storage
