#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/row_codec.h"
#include "types/schema.h"
#include "types/value.h"

namespace htg::storage {

// Pull-based row cursor, the engine's universal scan interface.
class RowIterator {
 public:
  virtual ~RowIterator() = default;

  // Produces the next row. Returns false at end of stream or on error
  // (check status() to distinguish).
  virtual bool Next(Row* row) = 0;

  virtual Status status() const { return Status::OK(); }
};

// Physical storage accounting, the measurement behind Tables 1 and 2.
struct StorageStats {
  uint64_t rows = 0;
  uint64_t pages = 0;
  // Bytes of serialized page data (relational storage).
  uint64_t data_bytes = 0;
  // Bytes held externally in the FileStream store for this table.
  uint64_t filestream_bytes = 0;

  uint64_t TotalBytes() const { return data_bytes + filestream_bytes; }
};

// Base interface of heap and clustered (B+-tree) tables.
class TableStorage {
 public:
  virtual ~TableStorage() = default;

  virtual const Schema& schema() const = 0;
  virtual Compression compression() const = 0;

  virtual Status Insert(const Row& row) = 0;
  virtual uint64_t num_rows() const = 0;
  virtual StorageStats Stats() const = 0;

  // Full scan. Heap order for heaps, key order for clustered tables.
  virtual std::unique_ptr<RowIterator> NewScan() = 0;

  // Removes all rows.
  virtual void Truncate() = 0;

  // Key columns of the clustered index; empty for heaps.
  virtual const std::vector<int>& clustered_key() const {
    static const std::vector<int>& empty = *new std::vector<int>();
    return empty;
  }

  // Range scan from the first row with key >= prefix. Only clustered
  // tables support this.
  virtual Result<std::unique_ptr<RowIterator>> NewScanFrom(const Row& prefix) {
    (void)prefix;
    return Status::NotImplemented("table has no clustered index");
  }
};

}  // namespace htg::storage

