#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/row_codec.h"
#include "types/row_batch.h"
#include "types/schema.h"
#include "types/value.h"

namespace htg::storage {

// Pull-based row cursor, the engine's universal scan interface.
class RowIterator {
 public:
  virtual ~RowIterator() = default;

  // Produces the next row. Returns false at end of stream or on error
  // (check status() to distinguish).
  virtual bool Next(Row* row) = 0;

  // Produces the next batch of rows: clears `batch` and fills it up to
  // its capacity. Returns true iff at least one row was produced; false
  // means end of stream or error (check status()). The default adapter
  // loops Next() so every row-only iterator participates in the batch
  // pull path; hot storage scans override this with a page-native fill.
  virtual bool NextBatch(RowBatch* batch) {
    batch->Clear();
    Row row;
    while (!batch->full() && Next(&row)) {
      batch->AppendRow(std::move(row));
      row.clear();
    }
    return batch->num_rows() > 0;
  }

  // True when NextBatch() is a native columnar fill rather than the
  // row-loop adapter above. Batch consumers check this to decide whether
  // a vectorized kernel pays: pulling batches from a row-only producer
  // moves every value into a batch and straight back out again, so those
  // pipelines stay row-at-a-time end to end.
  virtual bool BatchNative() const { return false; }

  virtual Status status() const { return Status::OK(); }
};

// Physical storage accounting, the measurement behind Tables 1 and 2.
struct StorageStats {
  uint64_t rows = 0;
  uint64_t pages = 0;
  // Bytes of serialized page data (relational storage).
  uint64_t data_bytes = 0;
  // Bytes held externally in the FileStream store for this table.
  uint64_t filestream_bytes = 0;

  uint64_t TotalBytes() const { return data_bytes + filestream_bytes; }
};

// Base interface of heap and clustered (B+-tree) tables.
class TableStorage {
 public:
  virtual ~TableStorage() = default;

  virtual const Schema& schema() const = 0;
  virtual Compression compression() const = 0;

  virtual Status Insert(const Row& row) = 0;
  virtual uint64_t num_rows() const = 0;
  virtual StorageStats Stats() const = 0;

  // Full scan. Heap order for heaps, key order for clustered tables.
  virtual std::unique_ptr<RowIterator> NewScan() = 0;

  // Removes all rows.
  virtual void Truncate() = 0;

  // Key columns of the clustered index; empty for heaps.
  virtual const std::vector<int>& clustered_key() const {
    static const std::vector<int>& empty = *new std::vector<int>();
    return empty;
  }

  // Range scan from the first row with key >= prefix. Only clustered
  // tables support this.
  virtual Result<std::unique_ptr<RowIterator>> NewScanFrom(const Row& prefix) {
    (void)prefix;
    return Status::NotImplemented("table has no clustered index");
  }
};

}  // namespace htg::storage

