#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"
#include "storage/tablespace.h"
#include "types/value.h"

namespace htg::storage {

// Spill-run storage for memory-governed operators (external sort, hash
// aggregate / hash join partition spills). Runs are sequences of rows
// written as checksummed pages through a TableSpace TableFile, so spilled
// bytes ride the same BufferPool + WAL-ordered write-back path as table
// pages: CRC32C trailers verified on re-read, injected VFS faults surface
// as typed statuses, and the file is deleted with its TableFile.
//
// Page layout (self-contained, like every engine page):
//   [varint row_count] [row records...] [4-byte CRC32C trailer]
// Row records are self-describing (SpillEncodeRow below), so readers need
// no schema — operators spill heterogeneous (key ++ payload) rows freely.

// Target payload bytes per spill page. Larger than table pages: spill
// I/O is sequential, and fewer pages mean fewer WAL records.
inline constexpr size_t kSpillPageBytes = 64 * 1024;

// One run: the rows one writer sealed, in write order. Pages are listed
// (not a contiguous range) because several partition writers interleave
// their pages in one shared file.
struct SpillRun {
  std::vector<uint64_t> pages;
  uint64_t rows = 0;
  // Encoded record bytes (excludes page headers/trailers).
  uint64_t bytes = 0;
};

// Appends `row` to `out` in the self-describing spill record format.
void SpillEncodeRow(const Row& row, std::string* out);

// Decodes one record from [*p, limit) into `row` (cleared first) and
// advances *p past it. Corruption on malformed input.
Status SpillDecodeRow(const char** p, const char* limit, Row* row);

// Owns the spill TableFile of one operator. Destroying the SpillFile
// deletes the file (TableFile semantics) — spill data never outlives the
// statement, even on error paths.
class SpillFile {
 public:
  static Result<std::unique_ptr<SpillFile>> Create(TableSpace* space,
                                                   const std::string& label);

  TableFile* file() { return file_.get(); }

  // Writes back every dirty page now, so injected write faults fail the
  // owning statement instead of hiding in background eviction.
  Status Flush() { return file_->Flush(); }

 private:
  explicit SpillFile(std::unique_ptr<TableFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<TableFile> file_;
};

// Accumulates rows into pages and appends them to the shared file. One
// writer per run; callers serialize writers that share a file (the
// TableFile single-writer contract).
class SpillRunWriter {
 public:
  explicit SpillRunWriter(SpillFile* file, size_t page_bytes = kSpillPageBytes)
      : file_(file), page_bytes_(page_bytes) {}

  Status Add(const Row& row);

  // Seals the buffered tail page and returns the finished run. The
  // writer is spent afterwards. Ticks exec.spill.runs / exec.spill.bytes.
  Result<SpillRun> Finish();

  // Rows added so far, counting those still buffered in the open page —
  // callers use rows() == 0 to skip never-used writers at Finish time.
  uint64_t rows() const { return run_.rows + buf_rows_; }

 private:
  Status SealPage();

  SpillFile* file_;
  size_t page_bytes_;
  std::string buf_;  // encoded records of the open page
  uint64_t buf_rows_ = 0;
  SpillRun run_;
};

// Streams one run back, pinning pages through the buffer pool (CRC
// verified on any miss fill).
class SpillRunReader : public RowIterator {
 public:
  SpillRunReader(SpillFile* file, SpillRun run)
      : file_(file), run_(std::move(run)) {}

  bool Next(Row* row) override;
  Status status() const override { return status_; }

 private:
  bool LoadNextPage();

  SpillFile* file_;
  SpillRun run_;
  size_t next_page_index_ = 0;
  PageGuard guard_;
  const char* pos_ = nullptr;
  const char* limit_ = nullptr;
  uint64_t page_rows_left_ = 0;
  Status status_;
};

}  // namespace htg::storage
