#pragma once

// The network I/O seam of htgdb-server: every socket syscall in the tree
// lives behind these Status-returning wrappers (net_socket.cc is the one
// place raw socket(2)/recv(2)/send(2) calls are sanctioned — the
// server-raw-socket lint rule bans them everywhere else, mirroring how
// storage::Vfs fences file I/O). Keeping one boundary gives the server
// uniform typed errors (kIOError for hard transport failures, kTransient
// for timeouts), EINTR retries, and MSG_NOSIGNAL on every send so a peer
// that vanishes mid-result surfaces as a Status instead of SIGPIPE.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"

namespace htg::server {

// A connected stream socket (one side of a client<->server connection).
class Socket {
 public:
  // Takes ownership of a connected fd.
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // Reads exactly `len` bytes. kIOError on EOF mid-buffer or a hard
  // error; kAborted with "connection closed" when the peer closed
  // cleanly before the first byte; kTransient on a recv timeout.
  Status ReadFull(char* buf, size_t len);

  // Writes all of `data` (retrying short writes and EINTR). A closed or
  // reset peer returns kIOError — never SIGPIPE.
  Status WriteAll(std::string_view data);

  // Bounds every subsequent ReadFull wait; 0 restores blocking reads.
  Status SetRecvTimeout(int64_t millis);

  // Half-closes the read side: a handler blocked in ReadFull wakes with
  // "connection closed". The write side stays open so a final goodbye
  // frame can still be sent (graceful-shutdown drain).
  void ShutdownRead();

  void Close();
  bool closed() const { return fd_ < 0; }

 private:
  int fd_;
};

// A listening TCP socket bound to 127.0.0.1.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  // Binds and listens on `port` (0 = kernel-assigned ephemeral port;
  // port() reports the actual one).
  Status Listen(uint16_t port);

  // Waits up to `timeout_ms` for a connection. Returns a connected
  // socket, kTransient on timeout (callers loop and re-check their stop
  // flag — this is what makes the accept loop interruptible), or
  // kAborted once the socket is closed.
  Result<std::unique_ptr<Socket>> Accept(int timeout_ms);

  void Close();
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// Connects to 127.0.0.1:`port` (the server binds loopback only).
Result<std::unique_ptr<Socket>> ConnectLoopback(uint16_t port,
                                                int timeout_ms = 10000);

}  // namespace htg::server
