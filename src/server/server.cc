#include "server/server.h"

#include <algorithm>

#include "common/metrics.h"

namespace htg::server {

Server::Server(Database* db, ServerOptions options)
    : db_(db),
      options_(options),
      engine_(db),
      pool_(std::max(1, options.threads)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  HTG_RETURN_IF_ERROR(listener_.Listen(options_.port));
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    // Bounded poll keeps the loop responsive to Shutdown without a
    // self-pipe; transient results (timeout, EINTR) just re-check.
    Result<std::unique_ptr<Socket>> accepted = listener_.Accept(200);
    if (!accepted.ok()) {
      if (accepted.status().IsTransient()) continue;
      break;  // listener closed or hard I/O failure
    }
    HTG_METRIC_COUNTER("server.connections")->Add();
    // shared_ptr because ThreadPool tasks are std::function (copyable).
    std::shared_ptr<Socket> socket = std::move(*accepted);
    {
      MutexLock lock(&conns_mu_);
      conns_.push_back(socket.get());
    }
    HTG_METRIC_GAUGE("server.connections.active")->Add(1);
    pool_.Submit([this, socket] { ServeConnection(socket); });
  }
}

void Server::ServeConnection(std::shared_ptr<Socket> socket) {
  const uint64_t session_id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  SessionOptions session_options;
  session_options.lock_timeout_ms = options_.lock_timeout_ms;
  session_options.stmt_cache_capacity = options_.stmt_cache_capacity;
  session_options.query_mem_bytes = options_.session_mem_bytes;
  Session session(session_id, &engine_, &locks_, session_options);
  session.Serve(socket.get(), &draining_);
  {
    MutexLock lock(&conns_mu_);
    conns_.erase(std::find(conns_.begin(), conns_.end(), socket.get()));
  }
  HTG_METRIC_GAUGE("server.connections.active")->Add(-1);
}

void Server::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  {
    // Unblock every handler parked in recv. A handler mid-statement is
    // not parked — it finishes executing, fails its next read with EOF,
    // sends Goodbye, and returns; nothing in flight is cut off.
    MutexLock lock(&conns_mu_);
    for (Socket* socket : conns_) socket->ShutdownRead();
  }
  pool_.Wait();
}

size_t Server::active_connections() const {
  MutexLock lock(&conns_mu_);
  return conns_.size();
}

}  // namespace htg::server
