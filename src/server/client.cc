#include "server/client.h"

#include "common/string_util.h"

namespace htg::server {

Result<std::unique_ptr<Client>> Client::Connect(uint16_t port,
                                                std::string client_name,
                                                int recv_timeout_ms) {
  HTG_ASSIGN_OR_RETURN(std::unique_ptr<Socket> socket,
                       ConnectLoopback(port, recv_timeout_ms));
  std::unique_ptr<Client> client(new Client(std::move(socket)));
  HelloMsg hello;
  hello.peer_name = std::move(client_name);
  std::string payload;
  EncodeHello(hello, &payload);
  HTG_RETURN_IF_ERROR(WriteFrame(client->socket_.get(), MsgType::kHello,
                                 payload));
  Frame frame;
  HTG_RETURN_IF_ERROR(ReadFrame(client->socket_.get(), &frame));
  if (frame.type == MsgType::kError) {
    ErrorMsg error;
    HTG_RETURN_IF_ERROR(DecodeError(frame.payload, &error));
    return Status(error.code, error.message);
  }
  if (frame.type != MsgType::kHelloAck) {
    return Status::Corruption(StringPrintf(
        "handshake: expected HelloAck, got frame type %u",
        static_cast<unsigned>(frame.type)));
  }
  HelloAckMsg ack;
  HTG_RETURN_IF_ERROR(DecodeHelloAck(frame.payload, &ack));
  if (ack.version != kProtocolVersion) {
    return Status::InvalidArgument(StringPrintf(
        "protocol version mismatch: server %u, client %u", ack.version,
        kProtocolVersion));
  }
  client->session_id_ = ack.session_id;
  return client;
}

Result<ClientResult> Client::Query(const std::string& sql,
                                   const std::string& token) {
  QueryMsg msg;
  msg.sql = sql;
  msg.token = token;
  std::string payload;
  EncodeQuery(msg, &payload);
  HTG_RETURN_IF_ERROR(WriteFrame(socket_.get(), MsgType::kQuery, payload));
  return ReadResult();
}

Result<uint64_t> Client::Prepare(const std::string& sql) {
  QueryMsg msg;
  msg.sql = sql;
  std::string payload;
  EncodeQuery(msg, &payload);
  HTG_RETURN_IF_ERROR(WriteFrame(socket_.get(), MsgType::kPrepare, payload));
  Frame frame;
  HTG_RETURN_IF_ERROR(ReadFrame(socket_.get(), &frame));
  if (frame.type == MsgType::kError) {
    ErrorMsg error;
    HTG_RETURN_IF_ERROR(DecodeError(frame.payload, &error));
    return Status(error.code, error.message);
  }
  if (frame.type != MsgType::kPrepareAck) {
    return Status::Corruption(StringPrintf(
        "expected PrepareAck, got frame type %u",
        static_cast<unsigned>(frame.type)));
  }
  uint64_t statement_id = 0;
  HTG_RETURN_IF_ERROR(DecodeU64(frame.payload, &statement_id));
  return statement_id;
}

Result<ClientResult> Client::Execute(uint64_t statement_id,
                                     const std::string& token) {
  ExecuteMsg msg;
  msg.statement_id = statement_id;
  msg.token = token;
  std::string payload;
  EncodeExecute(msg, &payload);
  HTG_RETURN_IF_ERROR(WriteFrame(socket_.get(), MsgType::kExecute, payload));
  return ReadResult();
}

Status Client::CloseStatement(uint64_t statement_id) {
  std::string payload;
  EncodeU64(statement_id, &payload);
  HTG_RETURN_IF_ERROR(
      WriteFrame(socket_.get(), MsgType::kCloseStmt, payload));
  Frame frame;
  HTG_RETURN_IF_ERROR(ReadFrame(socket_.get(), &frame));
  if (frame.type == MsgType::kError) {
    ErrorMsg error;
    HTG_RETURN_IF_ERROR(DecodeError(frame.payload, &error));
    return Status(error.code, error.message);
  }
  if (frame.type != MsgType::kResultDone) {
    return Status::Corruption("expected ResultDone for CloseStmt");
  }
  return Status::OK();
}

Status Client::Begin() { return SimpleCommand(MsgType::kBegin); }
Status Client::Commit() { return SimpleCommand(MsgType::kCommit); }
Status Client::Abort() { return SimpleCommand(MsgType::kAbort); }

Status Client::SimpleCommand(MsgType type) {
  HTG_RETURN_IF_ERROR(WriteFrame(socket_.get(), type, {}));
  Frame frame;
  HTG_RETURN_IF_ERROR(ReadFrame(socket_.get(), &frame));
  if (frame.type == MsgType::kError) {
    ErrorMsg error;
    HTG_RETURN_IF_ERROR(DecodeError(frame.payload, &error));
    return Status(error.code, error.message);
  }
  if (frame.type != MsgType::kResultDone) {
    return Status::Corruption(StringPrintf(
        "expected ResultDone, got frame type %u",
        static_cast<unsigned>(frame.type)));
  }
  return Status::OK();
}

void Client::Goodbye() {
  HTG_IGNORE_STATUS(WriteFrame(socket_.get(), MsgType::kGoodbye, {}));
  socket_->Close();
}

Result<ClientResult> Client::ReadResult() {
  ClientResult result;
  bool have_header = false;
  while (true) {
    Frame frame;
    HTG_RETURN_IF_ERROR(ReadFrame(socket_.get(), &frame));
    switch (frame.type) {
      case MsgType::kResultHeader:
        HTG_RETURN_IF_ERROR(DecodeSchema(frame.payload, &result.schema));
        have_header = true;
        break;
      case MsgType::kResultBatch:
        if (!have_header) {
          return Status::Corruption("ResultBatch before ResultHeader");
        }
        HTG_RETURN_IF_ERROR(DecodeRowBatch(frame.payload, &result.rows));
        break;
      case MsgType::kResultDone: {
        ResultDoneMsg done;
        HTG_RETURN_IF_ERROR(DecodeResultDone(frame.payload, &done));
        result.rows_affected = done.rows_affected;
        result.message = std::move(done.message);
        return result;
      }
      case MsgType::kError: {
        ErrorMsg error;
        HTG_RETURN_IF_ERROR(DecodeError(frame.payload, &error));
        return Status(error.code, error.message);
      }
      case MsgType::kGoodbye:
        return Status::Aborted("server shut down");
      default:
        return Status::Corruption(StringPrintf(
            "unexpected frame type %u in result stream",
            static_cast<unsigned>(frame.type)));
    }
  }
}

}  // namespace htg::server
