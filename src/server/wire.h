#pragma once

// htgdb wire protocol: length-prefixed binary frames over TCP.
//
//   frame   := length:u32le  type:u8  payload[length]
//   payload := message-specific (varints and length-prefixed strings,
//              the same codecs ROW compression uses)
//
// One request/response conversation per statement:
//
//   client                         server
//   ------                        -------
//   Hello{version, client}    ->
//                             <-  HelloAck{version, server, session_id}
//   Query{sql, token}         ->
//                             <-  ResultHeader{schema}        (row results)
//                             <-  ResultBatch{rows}*          (<= 256 rows each)
//                             <-  ResultDone{rows_affected, message}
//                         or <-  Error{status_code, message}  (statement
//                                 failed; session stays usable)
//   Prepare{sql}              ->
//                             <-  PrepareAck{statement_id}
//   Execute{statement_id, token} -> (same result framing as Query)
//   CloseStmt{statement_id}   ->
//                             <-  ResultDone{0, "closed"}
//   Begin{}                   ->
//                             <-  ResultDone{0, "begin"}   (or Error)
//   Commit{}                  ->
//                             <-  ResultDone{0, "commit"}  (or Error)
//   Abort{}                   ->
//                             <-  ResultDone{0, "abort"}   (or Error)
//   Goodbye{}                 ->   (client hangs up; no reply)
//
// Begin opens a multi-statement snapshot-isolation transaction (see
// docs/CONCURRENCY.md): every Query/Execute until Commit/Abort runs
// against the Begin-time snapshot, write locks accumulate until the
// transaction finishes, and a failed statement auto-aborts the whole
// transaction (the Error frame says so). Begin/Commit/Abort payloads are
// empty. A client that disconnects mid-transaction gets an implicit
// Abort.
//
// During graceful shutdown the server finishes the statement in flight,
// sends Goodbye{} to every connection, and closes. Typed errors cross the
// wire as the numeric StatusCode plus message, so a client-side Status
// carries the same code the engine produced (lock timeouts stay kAborted,
// budget failures stay kResourceExhausted, ...).

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/net_socket.h"
#include "types/schema.h"
#include "types/value.h"

namespace htg::server {

inline constexpr uint32_t kProtocolVersion = 2;
// A frame larger than this is a protocol error, not an allocation request:
// the limit is what keeps a corrupt length prefix from looking like a
// 4 GiB message.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;
// Rows per ResultBatch frame when streaming a result set.
inline constexpr size_t kResultBatchRows = 256;

enum class MsgType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kQuery = 3,
  kPrepare = 4,
  kPrepareAck = 5,
  kExecute = 6,
  kCloseStmt = 7,
  kResultHeader = 8,
  kResultBatch = 9,
  kResultDone = 10,
  kError = 11,
  kGoodbye = 12,
  kBegin = 13,
  kCommit = 14,
  kAbort = 15,
};

struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

// Blocking frame I/O over the socket seam.
Status WriteFrame(Socket* socket, MsgType type, std::string_view payload);
Status ReadFrame(Socket* socket, Frame* frame);

// --------------------------------------------------- payload codecs ---
// Encoders append to `out`; decoders consume a cursor range and return
// kCorruption on truncated or malformed payloads.

struct HelloMsg {
  uint32_t version = kProtocolVersion;
  std::string peer_name;
};
struct HelloAckMsg {
  uint32_t version = kProtocolVersion;
  std::string server_name;
  uint64_t session_id = 0;
};
struct QueryMsg {
  std::string sql;
  // Statement dedupe token (see SqlEngine::StatementOptions); the session
  // layer reuses it across its transient-error retries.
  std::string token;
};
struct ExecuteMsg {
  uint64_t statement_id = 0;
  std::string token;
};
struct ResultDoneMsg {
  uint64_t rows_affected = 0;
  std::string message;
};
struct ErrorMsg {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

void EncodeHello(const HelloMsg& msg, std::string* out);
Status DecodeHello(std::string_view payload, HelloMsg* msg);
void EncodeHelloAck(const HelloAckMsg& msg, std::string* out);
Status DecodeHelloAck(std::string_view payload, HelloAckMsg* msg);
void EncodeQuery(const QueryMsg& msg, std::string* out);
Status DecodeQuery(std::string_view payload, QueryMsg* msg);
void EncodeExecute(const ExecuteMsg& msg, std::string* out);
Status DecodeExecute(std::string_view payload, ExecuteMsg* msg);
void EncodeResultDone(const ResultDoneMsg& msg, std::string* out);
Status DecodeResultDone(std::string_view payload, ResultDoneMsg* msg);
void EncodeError(const Status& status, std::string* out);
Status DecodeError(std::string_view payload, ErrorMsg* msg);
void EncodeU64(uint64_t v, std::string* out);
Status DecodeU64(std::string_view payload, uint64_t* v);

// Result schema: column names + types, enough for client-side rendering.
void EncodeSchema(const Schema& schema, std::string* out);
Status DecodeSchema(std::string_view payload, Schema* schema);

// Self-describing row batch (tag per value), independent of the schema so
// expression results whose runtime kind differs from the declared column
// type survive the trip.
void EncodeRowBatch(const std::vector<Row>& rows, size_t begin, size_t end,
                    std::string* out);
Status DecodeRowBatch(std::string_view payload, std::vector<Row>* rows);

}  // namespace htg::server
