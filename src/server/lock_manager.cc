#include "server/lock_manager.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace htg::server {

void LockSet::Release() {
  if (manager_ != nullptr) {
    manager_->ReleaseSet(reads_, writes_);
    manager_ = nullptr;
  }
  reads_.clear();
  writes_.clear();
}

namespace {

void SortUnique(std::vector<std::string>* names) {
  std::sort(names->begin(), names->end());
  names->erase(std::unique(names->begin(), names->end()), names->end());
}

}  // namespace

Result<LockSet> LockManager::Acquire(std::vector<std::string> reads,
                                     std::vector<std::string> writes,
                                     int64_t timeout_ms) {
  SortUnique(&writes);
  SortUnique(&reads);
  // A table in both sets needs the exclusive lock only.
  reads.erase(std::remove_if(reads.begin(), reads.end(),
                             [&writes](const std::string& name) {
                               return std::binary_search(writes.begin(),
                                                         writes.end(), name);
                             }),
              reads.end());

  // One merged acquisition pass in global sorted order: the canonical
  // order is what makes concurrent multi-table statements converge
  // instead of waiting on each other's partial sets.
  struct Want {
    const std::string* table;
    bool exclusive;
  };
  std::vector<Want> wants;
  wants.reserve(reads.size() + writes.size());
  for (const std::string& name : reads) wants.push_back({&name, false});
  for (const std::string& name : writes) wants.push_back({&name, true});
  std::sort(wants.begin(), wants.end(), [](const Want& a, const Want& b) {
    return *a.table < *b.table;
  });

  LockSet set;
  set.manager_ = this;
  Stopwatch waited;
  {
    MutexLock lock(&mu_);
    for (const Want& want : wants) {
      bool announced = false;
      while (!TryAcquireLocked(*want.table, want.exclusive)) {
        if (want.exclusive && !announced) {
          ++tables_[*want.table].waiting_writers;
          announced = true;
        }
        const int64_t elapsed_ms =
            static_cast<int64_t>(waited.ElapsedMillis());
        const int64_t remaining = timeout_ms - elapsed_ms;
        if (remaining <= 0 || !released_.WaitFor(&mu_, remaining)) {
          if (announced) --tables_[*want.table].waiting_writers;
          // Roll back the partial set under the lock we already hold,
          // then fail typed: the statement dies, the session survives.
          for (const std::string& name : set.writes_) {
            tables_[name].writer = false;
          }
          for (const std::string& name : set.reads_) {
            --tables_[name].readers;
          }
          set.manager_ = nullptr;
          released_.NotifyAll();
          HTG_METRIC_COUNTER("server.lock.timeouts")->Add();
          return Status::Aborted(StringPrintf(
              "lock timeout after %lld ms: table %s is held in a "
              "conflicting mode",
              static_cast<long long>(timeout_ms), want.table->c_str()));
        }
      }
      if (announced) --tables_[*want.table].waiting_writers;
      if (want.exclusive) {
        set.writes_.push_back(*want.table);
      } else {
        set.reads_.push_back(*want.table);
      }
    }
  }
  set.wait_ns_ = static_cast<uint64_t>(waited.ElapsedSeconds() * 1e9);
  HTG_METRIC_HISTOGRAM("server.lock.wait_ns")->Record(set.wait_ns_);
  return set;
}

bool LockManager::TryAcquireLocked(const std::string& table, bool exclusive) {
  TableLock& state = tables_[table];
  if (exclusive) {
    if (state.writer || state.readers > 0) return false;
    state.writer = true;
    return true;
  }
  // New readers queue behind waiting writers so a scan storm cannot
  // starve a loader indefinitely.
  if (state.writer || state.waiting_writers > 0) return false;
  ++state.readers;
  return true;
}

void LockManager::ReleaseSet(const std::vector<std::string>& reads,
                             const std::vector<std::string>& writes) {
  MutexLock lock(&mu_);
  for (const std::string& name : writes) {
    auto it = tables_.find(name);
    if (it != tables_.end()) it->second.writer = false;
  }
  for (const std::string& name : reads) {
    auto it = tables_.find(name);
    if (it != tables_.end()) --it->second.readers;
  }
  // Drop idle entries so DROPped tables do not accumulate forever.
  for (auto it = tables_.begin(); it != tables_.end();) {
    const TableLock& state = it->second;
    if (!state.writer && state.readers == 0 && state.waiting_writers == 0) {
      it = tables_.erase(it);
    } else {
      ++it;
    }
  }
  released_.NotifyAll();
}

size_t LockManager::LockedTableCount() const {
  MutexLock lock(&mu_);
  size_t locked = 0;
  for (const auto& [name, state] : tables_) {
    if (state.writer || state.readers > 0) ++locked;
  }
  return locked;
}

}  // namespace htg::server
