#pragma once

// One connected client. A Session owns the request loop for its socket:
// it parses each statement once, derives the table lock set from the AST
// (reads shared, writes exclusive, DDL additionally serialized through a
// catalog pseudo-lock), acquires the locks for the statement's duration,
// and executes through the shared SqlEngine under the session's memory
// budget. Statement failures cross the wire as typed Error frames and the
// loop keeps serving; only protocol errors or a peer hangup end the
// session.
//
// Retry discipline lives here, not in the engine: the session retries
// kTransient statements itself, pinning a dedupe token so a load whose
// first run committed is never executed twice (the engine's internal
// retry loop is disabled via StatementOptions::caller_owns_retries).
//
// Prepared statements are a bounded per-session LRU of parsed ASTs:
// Prepare parses once, Execute replans/reruns under fresh locks, and an
// id evicted by capacity pressure (or Close) fails typed with kNotFound.

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "server/lock_manager.h"
#include "server/net_socket.h"
#include "server/wire.h"
#include "sql/ast.h"
#include "sql/engine.h"

namespace htg::server {

struct SessionOptions {
  // Bounded lock wait per statement (HTG_LOCK_TIMEOUT_MS).
  int64_t lock_timeout_ms = LockManager::kDefaultTimeoutMs;
  // Prepared statements cached per session before LRU eviction
  // (HTG_STMT_CACHE).
  size_t stmt_cache_capacity = 32;
  // Per-session query memory budget in bytes; 0 = database default.
  size_t query_mem_bytes = 0;
  // Session-owned whole-statement retries on kTransient.
  int statement_retries = sql::SqlEngine::kStatementRetries;
};

// The lock footprint of a parsed statement batch, in catalog-key
// (uppercased) table names.
struct LockFootprint {
  std::vector<std::string> reads;
  std::vector<std::string> writes;
  // Any statement in the batch mutates data (needs a dedupe token).
  bool has_writes = false;
};

// Derives the footprint by walking the AST: FROM/JOIN/subquery tables are
// reads, INSERT/TRUNCATE/CREATE/DROP targets are writes, and every
// statement takes the catalog pseudo-lock (shared for DML, exclusive for
// DDL) so a DROP cannot yank a TableDef out from under a running scan.
LockFootprint DeriveLockFootprint(const std::vector<sql::Statement>& stmts);

class Session {
 public:
  Session(uint64_t id, sql::SqlEngine* engine, LockManager* locks,
          SessionOptions options);

  uint64_t id() const { return id_; }

  // Serves the connection until the peer hangs up, a protocol error
  // occurs, or the socket's read side is shut down (graceful drain). The
  // in-flight statement always finishes; `draining` only changes the
  // goodbye: when set, the server is closing and the session sends
  // Goodbye{} before returning.
  void Serve(Socket* socket, const std::atomic<bool>* draining);

  // Observability for tests.
  uint64_t statements_executed() const {
    return statements_.load(std::memory_order_relaxed);
  }
  uint64_t cache_evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t cached_statements() const { return prepared_.size(); }

 private:
  struct Prepared {
    std::string sql;
    std::vector<sql::Statement> statements;
  };

  // Lock + execute + (session-owned) retry for one parsed batch.
  Result<sql::QueryResult> Run(const std::vector<sql::Statement>& stmts,
                               const std::string& client_token);

  Status HandleQuery(Socket* socket, const Frame& frame);
  Status HandlePrepare(Socket* socket, const Frame& frame);
  Status HandleExecute(Socket* socket, const Frame& frame);
  Status HandleClose(Socket* socket, const Frame& frame);

  Status SendResult(Socket* socket, const sql::QueryResult& result);
  Status SendError(Socket* socket, const Status& status);

  const uint64_t id_;
  sql::SqlEngine* const engine_;
  LockManager* const locks_;
  const SessionOptions options_;

  // Prepared-statement cache: id -> parsed AST, LRU order front = oldest.
  // Only the session's own serve thread touches these.
  uint64_t next_statement_id_ = 1;
  std::map<uint64_t, Prepared> prepared_;
  std::list<uint64_t> lru_;
  uint64_t token_seq_ = 0;

  std::atomic<uint64_t> statements_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace htg::server
