#pragma once

// One connected client. A Session owns the request loop for its socket:
// it parses each statement once, derives the lock set from the AST,
// acquires the locks for the statement's duration, and executes through
// the shared SqlEngine under the session's memory budget. Statement
// failures cross the wire as typed Error frames and the loop keeps
// serving; only protocol errors or a peer hangup end the session.
//
// Two lock regimes (see docs/CONCURRENCY.md). With MVCC on (the
// default), readers do not lock tables at all — their snapshot isolates
// them from concurrent inserts — they hold per-table schema-stability
// locks shared so TRUNCATE/DROP cannot destroy the rows a scan is
// walking; INSERT holds the table exclusively (one writer per table is
// what makes commit order equal append order). With HTG_MVCC=0 the
// footprint reverts to plain reads-shared / writes-exclusive table locks.
//
// BEGIN/COMMIT/ABORT frames bracket a multi-statement transaction: the
// session owns the TxnContext, accumulates each statement's locks until
// the transaction finishes, auto-aborts the whole transaction on any
// statement failure (no silent retry inside a transaction), and aborts
// implicitly if the client disconnects mid-transaction.
//
// Retry discipline lives here, not in the engine: the session retries
// kTransient statements itself, pinning a dedupe token so a load whose
// first run committed is never executed twice (the engine's internal
// retry loop is disabled via StatementOptions::caller_owns_retries).
//
// Prepared statements are a bounded per-session LRU of parsed ASTs:
// Prepare parses once, Execute replans/reruns under fresh locks, and an
// id evicted by capacity pressure (or Close) fails typed with kNotFound.

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "server/lock_manager.h"
#include "server/net_socket.h"
#include "server/wire.h"
#include "sql/ast.h"
#include "sql/engine.h"

namespace htg::server {

struct SessionOptions {
  // Bounded lock wait per statement (HTG_LOCK_TIMEOUT_MS).
  int64_t lock_timeout_ms = LockManager::kDefaultTimeoutMs;
  // Prepared statements cached per session before LRU eviction
  // (HTG_STMT_CACHE).
  size_t stmt_cache_capacity = 32;
  // Per-session query memory budget in bytes; 0 = database default.
  size_t query_mem_bytes = 0;
  // Session-owned whole-statement retries on kTransient.
  int statement_retries = sql::SqlEngine::kStatementRetries;
};

// The lock footprint of a parsed statement batch, in catalog-key
// (uppercased) table names.
struct LockFootprint {
  std::vector<std::string> reads;
  std::vector<std::string> writes;
  // Any statement in the batch mutates data (needs a dedupe token).
  bool has_writes = false;
};

// Derives the footprint by walking the AST: FROM/JOIN/subquery tables are
// reads, INSERT/TRUNCATE/CREATE/DROP targets are writes, and every
// statement takes the catalog pseudo-lock (shared for DML, exclusive for
// DDL) so a DROP cannot yank a TableDef out from under a running scan.
// With `mvcc_snapshots` set, scanned tables become shared
// schema-stability locks ("\x02"-prefixed) instead of table read locks —
// snapshot readers need the table to keep existing, not to stop moving —
// and TRUNCATE/DROP additionally take the schema lock exclusively to
// wait out every in-flight scan.
LockFootprint DeriveLockFootprint(const std::vector<sql::Statement>& stmts,
                                  bool mvcc_snapshots = false);

class Session {
 public:
  Session(uint64_t id, sql::SqlEngine* engine, LockManager* locks,
          SessionOptions options);

  uint64_t id() const { return id_; }

  // Serves the connection until the peer hangs up, a protocol error
  // occurs, or the socket's read side is shut down (graceful drain). The
  // in-flight statement always finishes; `draining` only changes the
  // goodbye: when set, the server is closing and the session sends
  // Goodbye{} before returning.
  void Serve(Socket* socket, const std::atomic<bool>* draining);

  // Observability for tests.
  uint64_t statements_executed() const {
    return statements_.load(std::memory_order_relaxed);
  }
  uint64_t cache_evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t cached_statements() const { return prepared_.size(); }
  bool in_transaction() const { return txn_ != nullptr; }

 private:
  struct Prepared {
    std::string sql;
    std::vector<sql::Statement> statements;
  };

  // Lock + execute + (session-owned) retry for one parsed batch.
  Result<sql::QueryResult> Run(const std::vector<sql::Statement>& stmts,
                               const std::string& client_token);

  Status HandleQuery(Socket* socket, const Frame& frame);
  Status HandlePrepare(Socket* socket, const Frame& frame);
  Status HandleExecute(Socket* socket, const Frame& frame);
  Status HandleClose(Socket* socket, const Frame& frame);
  Status HandleBegin(Socket* socket);
  Status HandleCommit(Socket* socket);
  Status HandleAbort(Socket* socket);

  // Rolls back the open transaction (if any) and releases every lock it
  // accumulated. Safe to call with no transaction open.
  void AbortActiveTxn();

  Status SendResult(Socket* socket, const sql::QueryResult& result);
  Status SendError(Socket* socket, const Status& status);
  Status SendDone(Socket* socket, const std::string& message);

  const uint64_t id_;
  sql::SqlEngine* const engine_;
  LockManager* const locks_;
  const SessionOptions options_;

  // Prepared-statement cache: id -> parsed AST, LRU order front = oldest.
  // Only the session's own serve thread touches these.
  uint64_t next_statement_id_ = 1;
  std::map<uint64_t, Prepared> prepared_;
  std::list<uint64_t> lru_;
  uint64_t token_seq_ = 0;

  // Open explicit transaction (wire BEGIN), or null. The lock sets its
  // statements acquired stay held until COMMIT/ABORT (write locks to
  // commit is what keeps one writer per table); `txn_held_reads_` /
  // `txn_held_writes_` mirror the held names, sorted, so a later
  // statement never re-acquires — re-taking a held exclusive lock would
  // self-deadlock. Only the session's serve thread touches these.
  std::unique_ptr<sql::TxnContext> txn_;
  std::vector<LockSet> txn_locks_;
  std::vector<std::string> txn_held_reads_;
  std::vector<std::string> txn_held_writes_;

  std::atomic<uint64_t> statements_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace htg::server
