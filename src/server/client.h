#pragma once

// Client-side half of the wire protocol: one blocking connection to a
// local htgdb-server. Statement failures come back as the same typed
// Status the engine produced (the StatusCode crosses the wire), so
// callers can distinguish a lock timeout (kAborted) from a budget
// failure (kResourceExhausted) from a parse error — exactly as they
// would in-process. Used by tools/htgdb_cli, tests, and bench_server.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/net_socket.h"
#include "server/wire.h"
#include "types/schema.h"
#include "types/value.h"

namespace htg::server {

// A fully materialized statement result on the client side.
struct ClientResult {
  Schema schema;
  std::vector<Row> rows;
  uint64_t rows_affected = 0;
  std::string message;
};

class Client {
 public:
  // Connects, handshakes, and returns a ready client. `recv_timeout_ms`
  // bounds every wait for a server frame (generous by default: a slow
  // analytical query is not a dead server).
  static Result<std::unique_ptr<Client>> Connect(
      uint16_t port, std::string client_name = "htgdb-client",
      int recv_timeout_ms = 60000);

  // Runs a SQL string; `token` is the statement dedupe token (empty lets
  // the server pick one for mutating statements).
  Result<ClientResult> Query(const std::string& sql,
                             const std::string& token = "");

  // Prepared statements: parse once server-side, execute by id.
  Result<uint64_t> Prepare(const std::string& sql);
  Result<ClientResult> Execute(uint64_t statement_id,
                               const std::string& token = "");
  Status CloseStatement(uint64_t statement_id);

  // Multi-statement transactions (snapshot isolation; see
  // docs/CONCURRENCY.md). Between Begin and Commit/Abort every Query/
  // Execute reads the Begin-time snapshot and holds its write locks to
  // commit; a failed statement auto-aborts server-side (the error says
  // "transaction aborted"), after which Commit/Abort fail typed with
  // kInvalidArgument until the next Begin.
  Status Begin();
  Status Commit();
  Status Abort();

  // Polite hangup (server tears the session down without an error).
  void Goodbye();

  uint64_t session_id() const { return session_id_; }

 private:
  explicit Client(std::unique_ptr<Socket> socket)
      : socket_(std::move(socket)) {}

  // Reads the result conversation that follows Query/Execute.
  Result<ClientResult> ReadResult();

  // Empty-payload request expecting ResultDone (Begin/Commit/Abort).
  Status SimpleCommand(MsgType type);

  std::unique_ptr<Socket> socket_;
  uint64_t session_id_ = 0;
};

}  // namespace htg::server
