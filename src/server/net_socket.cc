#include "server/net_socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/string_util.h"

namespace htg::server {

namespace {

std::string Errno(const char* what) {
  return StringPrintf("%s: %s", what, strerror(errno));
}

}  // namespace

// ------------------------------------------------------------- Socket ---

Socket::~Socket() { Close(); }

Status Socket::ReadFull(char* buf, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::recv(fd_, buf + done, len - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (done == 0) return Status::Aborted("connection closed");
      return Status::IOError(StringPrintf(
          "connection closed mid-frame (%zu of %zu bytes)", done, len));
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Transient("recv timeout");
    }
    return Status::IOError(Errno("recv"));
  }
  return Status::OK();
}

Status Socket::WriteAll(std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    // MSG_NOSIGNAL: a peer that disappeared mid-result must come back as
    // a Status the handler can log, not a process-killing SIGPIPE.
    const ssize_t n =
        ::send(fd_, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (n >= 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError(Errno("send"));
  }
  return Status::OK();
}

Status Socket::SetRecvTimeout(int64_t millis) {
  struct timeval tv;
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError(Errno("setsockopt(SO_RCVTIMEO)"));
  }
  return Status::OK();
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ------------------------------------------------------- ListenSocket ---

ListenSocket::~ListenSocket() { Close(); }

Status ListenSocket::Listen(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IOError(Errno("socket"));
  const int one = 1;
  // Smoke tests and CI restart the server on the same port back to back;
  // without SO_REUSEADDR the TIME_WAIT remnant of the previous run makes
  // bind fail spuriously.
  if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return Status::IOError(Errno("setsockopt(SO_REUSEADDR)"));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(Errno("bind"));
  }
  if (::listen(fd_, 128) != 0) return Status::IOError(Errno("listen"));
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    return Status::IOError(Errno("getsockname"));
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Result<std::unique_ptr<Socket>> ListenSocket::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::Aborted("listen socket closed");
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Status::Transient("poll interrupted");
    return Status::IOError(Errno("poll"));
  }
  if (ready == 0) return Status::Transient("accept timeout");
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) {
      return Status::Transient("accept interrupted");
    }
    return Status::IOError(Errno("accept"));
  }
  const int one = 1;
  // Request/response frames are small; Nagle would add 40ms-class stalls
  // to every round trip.
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    ::close(fd);
    return Status::IOError(Errno("setsockopt(TCP_NODELAY)"));
  }
  return std::make_unique<Socket>(fd);
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------- ConnectLoopback ---

Result<std::unique_ptr<Socket>> ConnectLoopback(uint16_t port,
                                                int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(Errno("socket"));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status status = Status::IOError(Errno("connect"));
    ::close(fd);
    return status;
  }
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    const Status status = Status::IOError(Errno("setsockopt(TCP_NODELAY)"));
    ::close(fd);
    return status;
  }
  auto socket = std::make_unique<Socket>(fd);
  HTG_RETURN_IF_ERROR(socket->SetRecvTimeout(timeout_ms));
  return socket;
}

}  // namespace htg::server
