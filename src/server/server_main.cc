// htgdb-server entry point: opens a database, binds the loopback server,
// and runs until SIGTERM/SIGINT triggers the graceful drain. All signal
// handling stays here — the handler only flips an atomic flag the main
// loop polls, so the drain itself (locks, joins, frame writes) runs on a
// normal thread, never in signal context.
//
//   HTG_SERVER_PORT       listen port (default 0 = kernel-assigned)
//   HTG_SERVER_THREADS    connection-handler threads (default 8)
//   HTG_LOCK_TIMEOUT_MS   per-statement lock wait bound (default 5000)
//   HTG_STMT_CACHE        prepared statements cached per session (def. 32)

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "catalog/database.h"
#include "server/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int /*signum*/) {
  g_stop.store(true, std::memory_order_release);
}

long EnvLong(const char* name, long fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  return end != env ? parsed : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const char* db_name = argc > 1 ? argv[1] : "htgdb";

  htg::server::ServerOptions options;
  options.port = static_cast<uint16_t>(EnvLong("HTG_SERVER_PORT", 0));
  options.threads = static_cast<int>(EnvLong("HTG_SERVER_THREADS", 8));
  options.lock_timeout_ms =
      EnvLong("HTG_LOCK_TIMEOUT_MS",
              htg::server::LockManager::kDefaultTimeoutMs);
  options.stmt_cache_capacity =
      static_cast<size_t>(EnvLong("HTG_STMT_CACHE", 32));

  auto db = htg::Database::Open(db_name);
  if (!db.ok()) {
    fprintf(stderr, "htgdb-server: cannot open database '%s': %s\n", db_name,
            db.status().ToString().c_str());
    return 1;
  }

  htg::server::Server server(db->get(), options);
  const htg::Status started = server.Start();
  if (!started.ok()) {
    fprintf(stderr, "htgdb-server: %s\n", started.ToString().c_str());
    return 1;
  }

  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  // The smoke harness parses this line for the resolved port.
  printf("htgdb-server listening on 127.0.0.1:%u\n", server.port());
  fflush(stdout);

  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.Shutdown();
  printf("htgdb-server: drained %llu sessions, shut down cleanly\n",
         static_cast<unsigned long long>(server.sessions_served()));
  return 0;
}
