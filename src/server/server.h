#pragma once

// htgdb-server: the multi-client front end. One accept loop plus a
// dedicated connection pool (NOT ThreadPool::Default() — handlers block on
// socket reads, and parking them in the executor's pool would starve
// morsel workers mid-query). Each connection gets a Session served
// thread-per-connection on the bounded pool; connections beyond the pool
// size queue until a handler frees up.
//
// Shutdown() is the graceful drain: stop accepting, shut down the read
// side of every live connection (the in-flight statement finishes, the
// next read sees EOF), let each session send Goodbye, then join the pool.
// Signal wiring (SIGTERM/SIGINT -> Shutdown) lives in server_main.cc.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "catalog/database.h"
#include "common/thread_pool.h"
#include "server/lock_manager.h"
#include "server/net_socket.h"
#include "server/session.h"
#include "sql/engine.h"

namespace htg::server {

struct ServerOptions {
  // TCP port on 127.0.0.1; 0 picks an ephemeral port (tests, benches).
  // HTG_SERVER_PORT at the binary level.
  uint16_t port = 0;
  // Connection-handler threads (HTG_SERVER_THREADS). Also the cap on
  // concurrently served clients.
  int threads = 8;
  // Per-statement lock wait bound (HTG_LOCK_TIMEOUT_MS).
  int64_t lock_timeout_ms = LockManager::kDefaultTimeoutMs;
  // Prepared statements cached per session (HTG_STMT_CACHE).
  size_t stmt_cache_capacity = 32;
  // Per-session query memory budget in bytes; 0 = database default.
  size_t session_mem_bytes = 0;
};

class Server {
 public:
  Server(Database* db, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the listen socket and starts the accept loop. After a
  // successful Start, port() is the live port (resolved if 0 was asked).
  Status Start();

  // Graceful drain; idempotent, safe from a signal-notified thread.
  void Shutdown();

  uint16_t port() const { return listener_.port(); }
  bool running() const { return running_.load(std::memory_order_acquire); }
  size_t active_connections() const;
  uint64_t sessions_served() const {
    return next_session_id_.load(std::memory_order_relaxed) - 1;
  }

  sql::SqlEngine* engine() { return &engine_; }
  LockManager* locks() { return &locks_; }

 private:
  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Socket> socket);

  Database* const db_;
  const ServerOptions options_;
  sql::SqlEngine engine_;
  LockManager locks_;

  ListenSocket listener_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> next_session_id_{1};

  ThreadPool pool_;
  std::thread accept_thread_;

  // Live connection sockets, so Shutdown can unblock their reads.
  mutable Mutex conns_mu_{"Server::conns_mu_"};
  std::vector<Socket*> conns_ HTG_GUARDED_BY(conns_mu_);
};

}  // namespace htg::server
