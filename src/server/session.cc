#include "server/session.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/string_util.h"
#include "sql/parser.h"

namespace htg::server {

namespace {

// The catalog pseudo-lock. The \x01 prefix cannot appear in a SQL
// identifier, so it can never collide with a user table name.
const char kCatalogLock[] =
    "\x01"
    "catalog";

// Per-table schema-stability pseudo-locks, used when MVCC snapshots are
// on. A snapshot reader holds "\x02<TABLE>" shared instead of locking
// the table itself: its snapshot already isolates it from concurrent
// inserts, but TRUNCATE/DROP physically destroy the rows the scan is
// walking, so those take the schema lock exclusively and wait readers
// out. Like \x01, the prefix cannot collide with a SQL identifier.
std::string SchemaLockName(const std::string& upper_table) {
  return std::string("\x02") + upper_table;
}

void CollectSelectReads(const sql::SelectStmt& stmt,
                        std::vector<std::string>* reads);

void CollectRefReads(const sql::TableRef& ref,
                     std::vector<std::string>* reads) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kTable:
      reads->push_back(ToUpper(ref.name));
      break;
    case sql::TableRef::Kind::kSubquery:
      if (ref.subquery != nullptr) CollectSelectReads(*ref.subquery, reads);
      break;
    case sql::TableRef::Kind::kTvf:
    case sql::TableRef::Kind::kOpenRowset:
    case sql::TableRef::Kind::kNone:
      // TVFs and bulk rowsets read files, not catalog tables.
      break;
  }
}

void CollectSelectReads(const sql::SelectStmt& stmt,
                        std::vector<std::string>* reads) {
  CollectRefReads(stmt.from, reads);
  for (const sql::JoinClause& join : stmt.joins) {
    CollectRefReads(join.ref, reads);
  }
}

}  // namespace

LockFootprint DeriveLockFootprint(const std::vector<sql::Statement>& stmts,
                                  bool mvcc_snapshots) {
  LockFootprint fp;
  bool ddl = false;
  std::vector<std::string> scans;  // tables read through a snapshot
  for (const sql::Statement& stmt : stmts) {
    switch (stmt.kind) {
      case sql::Statement::Kind::kSelect:
      case sql::Statement::Kind::kExplain:
        if (stmt.select != nullptr) CollectSelectReads(*stmt.select, &scans);
        break;
      case sql::Statement::Kind::kInsert: {
        const std::string target = ToUpper(stmt.insert->table);
        fp.writes.push_back(target);
        if (mvcc_snapshots) {
          // The writer needs the table to keep existing until its txn
          // finishes, exactly like a reader does.
          fp.reads.push_back(SchemaLockName(target));
        }
        if (stmt.insert->select != nullptr) {
          CollectSelectReads(*stmt.insert->select, &scans);
        }
        fp.has_writes = true;
        break;
      }
      case sql::Statement::Kind::kCreateTable:
        fp.writes.push_back(ToUpper(stmt.create_table->name));
        fp.has_writes = true;
        ddl = true;
        break;
      case sql::Statement::Kind::kDropTable: {
        const std::string target = ToUpper(stmt.table_name);
        fp.writes.push_back(target);
        if (mvcc_snapshots) fp.writes.push_back(SchemaLockName(target));
        fp.has_writes = true;
        ddl = true;
        break;
      }
      case sql::Statement::Kind::kTruncate: {
        const std::string target = ToUpper(stmt.table_name);
        fp.writes.push_back(target);
        if (mvcc_snapshots) fp.writes.push_back(SchemaLockName(target));
        fp.has_writes = true;
        break;
      }
    }
  }
  // Scanned tables: with MVCC the snapshot isolates the scan from
  // concurrent inserts, so readers take only the schema-stability lock
  // (a SELECT never blocks behind a bulk load); without it they must
  // lock the table shared to keep writers out mid-scan.
  for (const std::string& table : scans) {
    fp.reads.push_back(mvcc_snapshots ? SchemaLockName(table) : table);
  }
  // Every statement participates in the catalog lock: DDL exclusively
  // (changing the table map), everything else shared (resolving pointers
  // into it). This is what keeps a TableDef* alive for a running scan.
  if (ddl) {
    fp.writes.push_back(kCatalogLock);
  } else {
    fp.reads.push_back(kCatalogLock);
  }
  return fp;
}

Session::Session(uint64_t id, sql::SqlEngine* engine, LockManager* locks,
                 SessionOptions options)
    : id_(id), engine_(engine), locks_(locks), options_(options) {}

void Session::Serve(Socket* socket, const std::atomic<bool>* draining) {
  // However the connection ends — hangup, drain, protocol error — an
  // open transaction aborts implicitly so its accumulated locks release
  // and its writes roll back; a vanished client must not leave a table
  // locked (or half-loaded) forever.
  struct AbortOnExit {
    Session* session;
    ~AbortOnExit() {
      if (session->txn_ != nullptr) {
        HTG_METRIC_COUNTER("server.txn.disconnect_aborts")->Add();
      }
      session->AbortActiveTxn();
    }
  } abort_on_exit{this};

  // Handshake: versions must match exactly.
  Frame frame;
  Status s = ReadFrame(socket, &frame);
  if (!s.ok() || frame.type != MsgType::kHello) return;
  HelloMsg hello;
  if (!DecodeHello(frame.payload, &hello).ok()) return;
  if (hello.version != kProtocolVersion) {
    HTG_IGNORE_STATUS(SendError(
        socket, Status::InvalidArgument(StringPrintf(
                    "protocol version mismatch: client %u, server %u",
                    hello.version, kProtocolVersion))));
    return;
  }
  HelloAckMsg ack;
  ack.server_name = "htgdb";
  ack.session_id = id_;
  std::string payload;
  EncodeHelloAck(ack, &payload);
  if (!WriteFrame(socket, MsgType::kHelloAck, payload).ok()) return;

  while (true) {
    s = ReadFrame(socket, &frame);
    if (!s.ok()) {
      // Peer hangup (or our own drain via ShutdownRead) surfaces as
      // kAborted "connection closed"; during a drain we still owe the
      // client a Goodbye so it can tell shutdown from a crash.
      if (draining != nullptr && draining->load(std::memory_order_relaxed)) {
        HTG_IGNORE_STATUS(WriteFrame(socket, MsgType::kGoodbye, {}));
      }
      return;
    }
    HTG_METRIC_COUNTER("server.requests")->Add();
    switch (frame.type) {
      case MsgType::kQuery:
        s = HandleQuery(socket, frame);
        break;
      case MsgType::kPrepare:
        s = HandlePrepare(socket, frame);
        break;
      case MsgType::kExecute:
        s = HandleExecute(socket, frame);
        break;
      case MsgType::kCloseStmt:
        s = HandleClose(socket, frame);
        break;
      case MsgType::kBegin:
        s = HandleBegin(socket);
        break;
      case MsgType::kCommit:
        s = HandleCommit(socket);
        break;
      case MsgType::kAbort:
        s = HandleAbort(socket);
        break;
      case MsgType::kGoodbye:
        return;
      default:
        // A frame type the server never expects is a protocol error, not
        // a statement error: close rather than guess at framing.
        HTG_IGNORE_STATUS(SendError(
            socket, Status::InvalidArgument(StringPrintf(
                        "unexpected frame type %u",
                        static_cast<unsigned>(frame.type)))));
        return;
    }
    // Handler errors are transport failures (the client vanished
    // mid-result) or protocol corruption; either way the conversation is
    // broken. Statement failures were already sent as Error frames and
    // return OK here.
    if (!s.ok()) return;
  }
}

Result<sql::QueryResult> Session::Run(
    const std::vector<sql::Statement>& stmts,
    const std::string& client_token) {
  const bool mvcc = engine_->db()->mvcc_enabled();
  LockFootprint fp = DeriveLockFootprint(stmts, mvcc);

  sql::StatementOptions opts;
  opts.caller_owns_retries = true;
  opts.query_mem_bytes = options_.query_mem_bytes;
  if (txn_ != nullptr) {
    // In-transaction statements never touch the dedupe ledger (nothing
    // commits until COMMIT, so there is no committed result to replay)
    // and never retry — on any failure the whole transaction aborts.
    opts.txn = txn_.get();
  } else {
    opts.token = client_token;
    if (opts.token.empty() && fp.has_writes) {
      // The client sent no token but the batch mutates data: pin a
      // session-local token so our own kTransient retries cannot re-run a
      // load whose first attempt committed.
      opts.token = StringPrintf("s%llu:%llu",
                                static_cast<unsigned long long>(id_),
                                static_cast<unsigned long long>(++token_seq_));
    }
  }

  uint64_t lock_wait_ns = 0;
  LockSet stmt_locks;  // autocommit: released when Run returns
  if (txn_ == nullptr) {
    // Locks span the retry loop: a retry is the same statement, and
    // letting the lock drop between attempts would let another writer
    // interleave into what the client sees as one operation.
    HTG_ASSIGN_OR_RETURN(stmt_locks,
                         locks_->Acquire(std::move(fp.reads),
                                         std::move(fp.writes),
                                         options_.lock_timeout_ms));
    lock_wait_ns = stmt_locks.wait_ns();
  } else {
    // Fail DDL/TRUNCATE before lock acquisition: its footprint wants the
    // catalog (or schema) lock exclusively, which the transaction already
    // holds shared — waiting on ourselves would burn the full lock
    // timeout before the engine rejects the statement anyway.
    for (const sql::Statement& stmt : stmts) {
      if (stmt.kind == sql::Statement::Kind::kCreateTable ||
          stmt.kind == sql::Statement::Kind::kDropTable ||
          stmt.kind == sql::Statement::Kind::kTruncate) {
        AbortActiveTxn();
        HTG_METRIC_COUNTER("server.txn.auto_aborts")->Add();
        return Status::InvalidArgument(
            "DDL and TRUNCATE are not allowed inside a transaction "
            "(transaction aborted)");
      }
    }
    // Accumulate only the locks the transaction does not already hold:
    // re-acquiring a held exclusive lock would self-deadlock. Inside a
    // transaction no upgrade is possible — exclusive locks are plain
    // table names, shared ones are \x01/\x02-prefixed pseudo-locks, and
    // the namespaces never meet.
    const auto held = [](const std::vector<std::string>& held_names,
                         const std::string& name) {
      return std::binary_search(held_names.begin(), held_names.end(), name);
    };
    std::vector<std::string> need_reads;
    std::vector<std::string> need_writes;
    for (const std::string& name : fp.reads) {
      if (!held(txn_held_reads_, name) && !held(txn_held_writes_, name)) {
        need_reads.push_back(name);
      }
    }
    for (const std::string& name : fp.writes) {
      if (!held(txn_held_writes_, name)) need_writes.push_back(name);
    }
    const auto sort_unique = [](std::vector<std::string>* names) {
      std::sort(names->begin(), names->end());
      names->erase(std::unique(names->begin(), names->end()), names->end());
    };
    sort_unique(&need_reads);
    sort_unique(&need_writes);
    Result<LockSet> acquired = locks_->Acquire(need_reads, need_writes,
                                               options_.lock_timeout_ms);
    if (!acquired.ok()) {
      // A lock timeout inside a transaction aborts it: the client's next
      // statement would otherwise run against a transaction whose lock
      // coverage silently has a hole.
      AbortActiveTxn();
      HTG_METRIC_COUNTER("server.txn.auto_aborts")->Add();
      return Status(acquired.status().code(),
                    acquired.status().message() + " (transaction aborted)");
    }
    lock_wait_ns = acquired->wait_ns();
    txn_locks_.push_back(std::move(*acquired));
    for (std::string& name : need_reads) {
      txn_held_reads_.insert(
          std::upper_bound(txn_held_reads_.begin(), txn_held_reads_.end(),
                           name),
          std::move(name));
    }
    for (std::string& name : need_writes) {
      txn_held_writes_.insert(
          std::upper_bound(txn_held_writes_.begin(), txn_held_writes_.end(),
                           name),
          std::move(name));
    }
  }

  Result<sql::QueryResult> r = engine_->ExecuteParsed(stmts, opts);
  if (txn_ == nullptr) {
    for (int attempt = 1; !r.ok() && r.status().IsTransient() &&
                          attempt < options_.statement_retries;
         ++attempt) {
      HTG_METRIC_COUNTER("server.statement.retries")->Add();
      r = engine_->ExecuteParsed(stmts, opts);
    }
  } else if (!r.ok()) {
    // Any failure inside an explicit transaction — including kTransient:
    // re-executing one statement against the accumulated effects of its
    // earlier siblings is not a replay of the transaction — aborts the
    // whole transaction.
    AbortActiveTxn();
    HTG_METRIC_COUNTER("server.txn.auto_aborts")->Add();
    statements_.fetch_add(1, std::memory_order_relaxed);
    return Status(r.status().code(),
                  r.status().message() + " (transaction aborted)");
  }
  statements_.fetch_add(1, std::memory_order_relaxed);
  if (r.ok() && !stmts.empty() &&
      stmts.back().kind == sql::Statement::Kind::kExplain &&
      stmts.back().explain_analyze) {
    // Surface the concurrency cost alongside the engine's plan stats.
    r->message += StringPrintf(
        "locks: wait=%.3f ms (timeout %lld ms)\n",
        static_cast<double>(lock_wait_ns) / 1e6,
        static_cast<long long>(options_.lock_timeout_ms));
  }
  return r;
}

Status Session::HandleQuery(Socket* socket, const Frame& frame) {
  QueryMsg msg;
  HTG_RETURN_IF_ERROR(DecodeQuery(frame.payload, &msg));
  Result<std::vector<sql::Statement>> parsed = sql::ParseSql(msg.sql);
  if (!parsed.ok()) return SendError(socket, parsed.status());
  Result<sql::QueryResult> r = Run(*parsed, msg.token);
  if (!r.ok()) return SendError(socket, r.status());
  return SendResult(socket, *r);
}

Status Session::HandlePrepare(Socket* socket, const Frame& frame) {
  // Prepare reuses the Query payload shape (the token field is unused).
  QueryMsg msg;
  HTG_RETURN_IF_ERROR(DecodeQuery(frame.payload, &msg));
  Result<std::vector<sql::Statement>> parsed = sql::ParseSql(msg.sql);
  if (!parsed.ok()) return SendError(socket, parsed.status());
  if (parsed->empty()) {
    return SendError(socket, Status::ParseError("no statement to prepare"));
  }
  const uint64_t stmt_id = next_statement_id_++;
  prepared_[stmt_id] = Prepared{msg.sql, std::move(*parsed)};
  lru_.push_back(stmt_id);
  while (prepared_.size() > options_.stmt_cache_capacity) {
    prepared_.erase(lru_.front());
    lru_.pop_front();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    HTG_METRIC_COUNTER("server.stmt_cache.evictions")->Add();
  }
  std::string payload;
  EncodeU64(stmt_id, &payload);
  return WriteFrame(socket, MsgType::kPrepareAck, payload);
}

Status Session::HandleExecute(Socket* socket, const Frame& frame) {
  ExecuteMsg msg;
  HTG_RETURN_IF_ERROR(DecodeExecute(frame.payload, &msg));
  const auto it = prepared_.find(msg.statement_id);
  if (it == prepared_.end()) {
    return SendError(
        socket, Status::NotFound(StringPrintf(
                    "prepared statement %llu not found (closed or evicted)",
                    static_cast<unsigned long long>(msg.statement_id))));
  }
  // Touch the LRU: this id moves to the back of the eviction order.
  lru_.erase(std::find(lru_.begin(), lru_.end(), msg.statement_id));
  lru_.push_back(msg.statement_id);
  Result<sql::QueryResult> r = Run(it->second.statements, msg.token);
  if (!r.ok()) return SendError(socket, r.status());
  return SendResult(socket, *r);
}

Status Session::HandleClose(Socket* socket, const Frame& frame) {
  uint64_t stmt_id = 0;
  HTG_RETURN_IF_ERROR(DecodeU64(frame.payload, &stmt_id));
  const auto it = prepared_.find(stmt_id);
  if (it != prepared_.end()) {
    prepared_.erase(it);
    lru_.erase(std::find(lru_.begin(), lru_.end(), stmt_id));
  }
  return SendDone(socket, "closed");
}

Status Session::SendDone(Socket* socket, const std::string& message) {
  ResultDoneMsg done;
  done.message = message;
  std::string payload;
  EncodeResultDone(done, &payload);
  return WriteFrame(socket, MsgType::kResultDone, payload);
}

Status Session::HandleBegin(Socket* socket) {
  if (txn_ != nullptr) {
    return SendError(socket,
                     Status::InvalidArgument(
                         "already in a transaction (COMMIT or ABORT first)"));
  }
  Result<std::unique_ptr<sql::TxnContext>> txn = engine_->BeginTxn();
  if (!txn.ok()) return SendError(socket, txn.status());
  txn_ = std::move(*txn);
  HTG_METRIC_COUNTER("server.txn.begun")->Add();
  return SendDone(socket, "begin");
}

Status Session::HandleCommit(Socket* socket) {
  if (txn_ == nullptr) {
    return SendError(socket,
                     Status::InvalidArgument("no transaction in progress"));
  }
  const Status s = engine_->CommitTxn(txn_.get());
  // Committed or not, the transaction is over: drop the context and
  // release every accumulated lock (write locks to commit — this is the
  // moment the tables unlock).
  txn_.reset();
  txn_locks_.clear();
  txn_held_reads_.clear();
  txn_held_writes_.clear();
  if (!s.ok()) return SendError(socket, s);
  HTG_METRIC_COUNTER("server.txn.committed")->Add();
  return SendDone(socket, "commit");
}

Status Session::HandleAbort(Socket* socket) {
  if (txn_ == nullptr) {
    return SendError(socket,
                     Status::InvalidArgument("no transaction in progress"));
  }
  AbortActiveTxn();
  HTG_METRIC_COUNTER("server.txn.aborted")->Add();
  return SendDone(socket, "abort");
}

void Session::AbortActiveTxn() {
  if (txn_ == nullptr) return;
  // Rollback failures (a blob delete hitting I/O trouble) cannot cross
  // the wire from a disconnect path; the storage state is still
  // consistent — the txn id is marked aborted either way.
  HTG_IGNORE_STATUS(engine_->AbortTxn(txn_.get()));
  txn_.reset();
  txn_locks_.clear();
  txn_held_reads_.clear();
  txn_held_writes_.clear();
}

Status Session::SendResult(Socket* socket, const sql::QueryResult& result) {
  if (result.schema.num_columns() > 0) {
    std::string payload;
    EncodeSchema(result.schema, &payload);
    HTG_RETURN_IF_ERROR(WriteFrame(socket, MsgType::kResultHeader, payload));
    for (size_t begin = 0; begin < result.rows.size();
         begin += kResultBatchRows) {
      const size_t end =
          std::min(begin + kResultBatchRows, result.rows.size());
      payload.clear();
      EncodeRowBatch(result.rows, begin, end, &payload);
      HTG_RETURN_IF_ERROR(WriteFrame(socket, MsgType::kResultBatch, payload));
    }
  }
  ResultDoneMsg done;
  done.rows_affected = result.rows_affected;
  done.message = result.message;
  std::string payload;
  EncodeResultDone(done, &payload);
  return WriteFrame(socket, MsgType::kResultDone, payload);
}

Status Session::SendError(Socket* socket, const Status& status) {
  std::string payload;
  EncodeError(status, &payload);
  return WriteFrame(socket, MsgType::kError, payload);
}

}  // namespace htg::server
