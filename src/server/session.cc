#include "server/session.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/string_util.h"
#include "sql/parser.h"

namespace htg::server {

namespace {

// The catalog pseudo-lock. The \x01 prefix cannot appear in a SQL
// identifier, so it can never collide with a user table name.
const char kCatalogLock[] =
    "\x01"
    "catalog";

void CollectSelectReads(const sql::SelectStmt& stmt,
                        std::vector<std::string>* reads);

void CollectRefReads(const sql::TableRef& ref,
                     std::vector<std::string>* reads) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kTable:
      reads->push_back(ToUpper(ref.name));
      break;
    case sql::TableRef::Kind::kSubquery:
      if (ref.subquery != nullptr) CollectSelectReads(*ref.subquery, reads);
      break;
    case sql::TableRef::Kind::kTvf:
    case sql::TableRef::Kind::kOpenRowset:
    case sql::TableRef::Kind::kNone:
      // TVFs and bulk rowsets read files, not catalog tables.
      break;
  }
}

void CollectSelectReads(const sql::SelectStmt& stmt,
                        std::vector<std::string>* reads) {
  CollectRefReads(stmt.from, reads);
  for (const sql::JoinClause& join : stmt.joins) {
    CollectRefReads(join.ref, reads);
  }
}

}  // namespace

LockFootprint DeriveLockFootprint(const std::vector<sql::Statement>& stmts) {
  LockFootprint fp;
  bool ddl = false;
  for (const sql::Statement& stmt : stmts) {
    switch (stmt.kind) {
      case sql::Statement::Kind::kSelect:
      case sql::Statement::Kind::kExplain:
        if (stmt.select != nullptr) CollectSelectReads(*stmt.select, &fp.reads);
        break;
      case sql::Statement::Kind::kInsert:
        fp.writes.push_back(ToUpper(stmt.insert->table));
        if (stmt.insert->select != nullptr) {
          CollectSelectReads(*stmt.insert->select, &fp.reads);
        }
        fp.has_writes = true;
        break;
      case sql::Statement::Kind::kCreateTable:
        fp.writes.push_back(ToUpper(stmt.create_table->name));
        fp.has_writes = true;
        ddl = true;
        break;
      case sql::Statement::Kind::kDropTable:
        fp.writes.push_back(ToUpper(stmt.table_name));
        fp.has_writes = true;
        ddl = true;
        break;
      case sql::Statement::Kind::kTruncate:
        fp.writes.push_back(ToUpper(stmt.table_name));
        fp.has_writes = true;
        break;
    }
  }
  // Every statement participates in the catalog lock: DDL exclusively
  // (changing the table map), everything else shared (resolving pointers
  // into it). This is what keeps a TableDef* alive for a running scan.
  if (ddl) {
    fp.writes.push_back(kCatalogLock);
  } else {
    fp.reads.push_back(kCatalogLock);
  }
  return fp;
}

Session::Session(uint64_t id, sql::SqlEngine* engine, LockManager* locks,
                 SessionOptions options)
    : id_(id), engine_(engine), locks_(locks), options_(options) {}

void Session::Serve(Socket* socket, const std::atomic<bool>* draining) {
  // Handshake: versions must match exactly at protocol version 1.
  Frame frame;
  Status s = ReadFrame(socket, &frame);
  if (!s.ok() || frame.type != MsgType::kHello) return;
  HelloMsg hello;
  if (!DecodeHello(frame.payload, &hello).ok()) return;
  if (hello.version != kProtocolVersion) {
    HTG_IGNORE_STATUS(SendError(
        socket, Status::InvalidArgument(StringPrintf(
                    "protocol version mismatch: client %u, server %u",
                    hello.version, kProtocolVersion))));
    return;
  }
  HelloAckMsg ack;
  ack.server_name = "htgdb";
  ack.session_id = id_;
  std::string payload;
  EncodeHelloAck(ack, &payload);
  if (!WriteFrame(socket, MsgType::kHelloAck, payload).ok()) return;

  while (true) {
    s = ReadFrame(socket, &frame);
    if (!s.ok()) {
      // Peer hangup (or our own drain via ShutdownRead) surfaces as
      // kAborted "connection closed"; during a drain we still owe the
      // client a Goodbye so it can tell shutdown from a crash.
      if (draining != nullptr && draining->load(std::memory_order_relaxed)) {
        HTG_IGNORE_STATUS(WriteFrame(socket, MsgType::kGoodbye, {}));
      }
      return;
    }
    HTG_METRIC_COUNTER("server.requests")->Add();
    switch (frame.type) {
      case MsgType::kQuery:
        s = HandleQuery(socket, frame);
        break;
      case MsgType::kPrepare:
        s = HandlePrepare(socket, frame);
        break;
      case MsgType::kExecute:
        s = HandleExecute(socket, frame);
        break;
      case MsgType::kCloseStmt:
        s = HandleClose(socket, frame);
        break;
      case MsgType::kGoodbye:
        return;
      default:
        // A frame type the server never expects is a protocol error, not
        // a statement error: close rather than guess at framing.
        HTG_IGNORE_STATUS(SendError(
            socket, Status::InvalidArgument(StringPrintf(
                        "unexpected frame type %u",
                        static_cast<unsigned>(frame.type)))));
        return;
    }
    // Handler errors are transport failures (the client vanished
    // mid-result) or protocol corruption; either way the conversation is
    // broken. Statement failures were already sent as Error frames and
    // return OK here.
    if (!s.ok()) return;
  }
}

Result<sql::QueryResult> Session::Run(
    const std::vector<sql::Statement>& stmts,
    const std::string& client_token) {
  LockFootprint fp = DeriveLockFootprint(stmts);

  sql::StatementOptions opts;
  opts.caller_owns_retries = true;
  opts.query_mem_bytes = options_.query_mem_bytes;
  opts.token = client_token;
  if (opts.token.empty() && fp.has_writes) {
    // The client sent no token but the batch mutates data: pin a
    // session-local token so our own kTransient retries cannot re-run a
    // load whose first attempt committed.
    opts.token = StringPrintf("s%llu:%llu",
                              static_cast<unsigned long long>(id_),
                              static_cast<unsigned long long>(++token_seq_));
  }

  // Locks span the retry loop: a retry is the same statement, and letting
  // the lock drop between attempts would let another writer interleave
  // into what the client sees as one operation.
  HTG_ASSIGN_OR_RETURN(LockSet locks,
                       locks_->Acquire(std::move(fp.reads),
                                       std::move(fp.writes),
                                       options_.lock_timeout_ms));

  Result<sql::QueryResult> r = engine_->ExecuteParsed(stmts, opts);
  for (int attempt = 1; !r.ok() && r.status().IsTransient() &&
                        attempt < options_.statement_retries;
       ++attempt) {
    HTG_METRIC_COUNTER("server.statement.retries")->Add();
    r = engine_->ExecuteParsed(stmts, opts);
  }
  statements_.fetch_add(1, std::memory_order_relaxed);
  if (r.ok() && !stmts.empty() &&
      stmts.back().kind == sql::Statement::Kind::kExplain &&
      stmts.back().explain_analyze) {
    // Surface the concurrency cost alongside the engine's plan stats.
    r->message += StringPrintf(
        "locks: wait=%.3f ms (timeout %lld ms)\n",
        static_cast<double>(locks.wait_ns()) / 1e6,
        static_cast<long long>(options_.lock_timeout_ms));
  }
  return r;
}

Status Session::HandleQuery(Socket* socket, const Frame& frame) {
  QueryMsg msg;
  HTG_RETURN_IF_ERROR(DecodeQuery(frame.payload, &msg));
  Result<std::vector<sql::Statement>> parsed = sql::ParseSql(msg.sql);
  if (!parsed.ok()) return SendError(socket, parsed.status());
  Result<sql::QueryResult> r = Run(*parsed, msg.token);
  if (!r.ok()) return SendError(socket, r.status());
  return SendResult(socket, *r);
}

Status Session::HandlePrepare(Socket* socket, const Frame& frame) {
  // Prepare reuses the Query payload shape (the token field is unused).
  QueryMsg msg;
  HTG_RETURN_IF_ERROR(DecodeQuery(frame.payload, &msg));
  Result<std::vector<sql::Statement>> parsed = sql::ParseSql(msg.sql);
  if (!parsed.ok()) return SendError(socket, parsed.status());
  if (parsed->empty()) {
    return SendError(socket, Status::ParseError("no statement to prepare"));
  }
  const uint64_t stmt_id = next_statement_id_++;
  prepared_[stmt_id] = Prepared{msg.sql, std::move(*parsed)};
  lru_.push_back(stmt_id);
  while (prepared_.size() > options_.stmt_cache_capacity) {
    prepared_.erase(lru_.front());
    lru_.pop_front();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    HTG_METRIC_COUNTER("server.stmt_cache.evictions")->Add();
  }
  std::string payload;
  EncodeU64(stmt_id, &payload);
  return WriteFrame(socket, MsgType::kPrepareAck, payload);
}

Status Session::HandleExecute(Socket* socket, const Frame& frame) {
  ExecuteMsg msg;
  HTG_RETURN_IF_ERROR(DecodeExecute(frame.payload, &msg));
  const auto it = prepared_.find(msg.statement_id);
  if (it == prepared_.end()) {
    return SendError(
        socket, Status::NotFound(StringPrintf(
                    "prepared statement %llu not found (closed or evicted)",
                    static_cast<unsigned long long>(msg.statement_id))));
  }
  // Touch the LRU: this id moves to the back of the eviction order.
  lru_.erase(std::find(lru_.begin(), lru_.end(), msg.statement_id));
  lru_.push_back(msg.statement_id);
  Result<sql::QueryResult> r = Run(it->second.statements, msg.token);
  if (!r.ok()) return SendError(socket, r.status());
  return SendResult(socket, *r);
}

Status Session::HandleClose(Socket* socket, const Frame& frame) {
  uint64_t stmt_id = 0;
  HTG_RETURN_IF_ERROR(DecodeU64(frame.payload, &stmt_id));
  const auto it = prepared_.find(stmt_id);
  if (it != prepared_.end()) {
    prepared_.erase(it);
    lru_.erase(std::find(lru_.begin(), lru_.end(), stmt_id));
  }
  ResultDoneMsg done;
  done.message = "closed";
  std::string payload;
  EncodeResultDone(done, &payload);
  return WriteFrame(socket, MsgType::kResultDone, payload);
}

Status Session::SendResult(Socket* socket, const sql::QueryResult& result) {
  if (result.schema.num_columns() > 0) {
    std::string payload;
    EncodeSchema(result.schema, &payload);
    HTG_RETURN_IF_ERROR(WriteFrame(socket, MsgType::kResultHeader, payload));
    for (size_t begin = 0; begin < result.rows.size();
         begin += kResultBatchRows) {
      const size_t end =
          std::min(begin + kResultBatchRows, result.rows.size());
      payload.clear();
      EncodeRowBatch(result.rows, begin, end, &payload);
      HTG_RETURN_IF_ERROR(WriteFrame(socket, MsgType::kResultBatch, payload));
    }
  }
  ResultDoneMsg done;
  done.rows_affected = result.rows_affected;
  done.message = result.message;
  std::string payload;
  EncodeResultDone(done, &payload);
  return WriteFrame(socket, MsgType::kResultDone, payload);
}

Status Session::SendError(Socket* socket, const Status& status) {
  std::string payload;
  EncodeError(status, &payload);
  return WriteFrame(socket, MsgType::kError, payload);
}

}  // namespace htg::server
