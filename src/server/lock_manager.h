#pragma once

// Table-level read/write intent locks: the concurrency layer that lets
// concurrent loaders and analysis queries interleave instead of
// serializing behind one engine mutex. Sessions acquire every lock a
// statement needs up front (reads shared, writes exclusive) in one
// canonical sorted order, hold them for the statement, and release on
// RAII destruction — two-phase locking at statement granularity, which
// composes with storage::Transaction's compensation rollback: a failed
// statement undoes its writes before the exclusive lock drops, so readers
// never observe a partial load.
//
// Waits are bounded: a conflict that outlives the timeout returns a typed
// kAborted Status ("lock timeout ...") that crosses the wire to the
// client; nothing inside the manager can deadlock (a single internal
// mutex guards the whole table, and multi-table acquisition happens in
// sorted order under a bounded wait). Lock waits feed the
// server.lock.wait_ns histogram and server.lock.timeouts counter.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/synchronization.h"

namespace htg::server {

class LockManager;

// The set of tables one statement holds locked. Releases on destruction.
class LockSet {
 public:
  LockSet() = default;
  ~LockSet() { Release(); }

  LockSet(LockSet&& other) noexcept
      : manager_(other.manager_),
        reads_(std::move(other.reads_)),
        writes_(std::move(other.writes_)) {
    other.manager_ = nullptr;
  }
  LockSet& operator=(LockSet&& other) noexcept {
    if (this != &other) {
      Release();
      manager_ = other.manager_;
      reads_ = std::move(other.reads_);
      writes_ = std::move(other.writes_);
      other.manager_ = nullptr;
    }
    return *this;
  }
  LockSet(const LockSet&) = delete;
  LockSet& operator=(const LockSet&) = delete;

  void Release();
  // Nanoseconds this statement spent blocked acquiring its locks.
  uint64_t wait_ns() const { return wait_ns_; }

 private:
  friend class LockManager;
  LockManager* manager_ = nullptr;
  std::vector<std::string> reads_;
  std::vector<std::string> writes_;
  uint64_t wait_ns_ = 0;
};

class LockManager {
 public:
  // Default bounded wait; HTG_LOCK_TIMEOUT_MS overrides at server start.
  static constexpr int64_t kDefaultTimeoutMs = 5000;

  LockManager() = default;

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Acquires shared locks on `reads` and exclusive locks on `writes`
  // (a table in both sets is locked exclusively), waiting up to
  // `timeout_ms` in total. On timeout every lock already taken is
  // released and a kAborted "lock timeout" Status is returned, so the
  // statement fails typed and the session keeps serving.
  Result<LockSet> Acquire(std::vector<std::string> reads,
                          std::vector<std::string> writes,
                          int64_t timeout_ms = kDefaultTimeoutMs);

  // Tables currently locked (either mode); for tests and diagnostics.
  size_t LockedTableCount() const;

 private:
  friend class LockSet;

  struct TableLock {
    int readers = 0;
    bool writer = false;
    // Writers announce themselves so a stream of readers cannot starve a
    // loader: new readers queue behind a waiting writer.
    int waiting_writers = 0;
  };

  bool TryAcquireLocked(const std::string& table, bool exclusive)
      HTG_REQUIRES(mu_);
  void ReleaseSet(const std::vector<std::string>& reads,
                  const std::vector<std::string>& writes);

  mutable Mutex mu_{"LockManager::mu_"};
  CondVar released_;
  std::map<std::string, TableLock> tables_ HTG_GUARDED_BY(mu_);
};

}  // namespace htg::server
