#include "server/wire.h"

#include <cstring>

#include "common/string_util.h"
#include "common/varint.h"

namespace htg::server {

namespace {

// Little-endian u32, the frame length prefix.
void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

Status Truncated(const char* what) {
  return Status::Corruption(StringPrintf("wire: truncated %s payload", what));
}

// Value tags: 0 = NULL, otherwise DataType + 1.
constexpr uint8_t kNullTag = 0;

void EncodeValue(const Value& value, std::string* out) {
  if (value.is_null()) {
    out->push_back(static_cast<char>(kNullTag));
    return;
  }
  out->push_back(static_cast<char>(static_cast<uint8_t>(value.type()) + 1));
  switch (value.type()) {
    case DataType::kBool:
    case DataType::kInt32:
    case DataType::kInt64:
      PutVarintSigned64(out, value.AsInt64());
      break;
    case DataType::kDouble: {
      double d = value.AsDouble();
      char buf[sizeof(double)];
      memcpy(buf, &d, sizeof(double));
      out->append(buf, sizeof(double));
      break;
    }
    case DataType::kString:
    case DataType::kBlob:
    case DataType::kGuid:
      PutLengthPrefixed(out, value.AsString());
      break;
  }
}

const char* DecodeValue(const char* p, const char* limit, Value* value) {
  if (p >= limit) return nullptr;
  const uint8_t tag = static_cast<uint8_t>(*p++);
  if (tag == kNullTag) {
    *value = Value::Null();
    return p;
  }
  if (tag > static_cast<uint8_t>(DataType::kGuid) + 1) return nullptr;
  const DataType type = static_cast<DataType>(tag - 1);
  switch (type) {
    case DataType::kBool:
    case DataType::kInt32:
    case DataType::kInt64: {
      int64_t v = 0;
      p = GetVarintSigned64(p, limit, &v);
      if (p == nullptr) return nullptr;
      *value = type == DataType::kBool
                   ? Value::Bool(v != 0)
                   : (type == DataType::kInt32
                          ? Value::Int32(static_cast<int32_t>(v))
                          : Value::Int64(v));
      return p;
    }
    case DataType::kDouble: {
      if (limit - p < static_cast<ptrdiff_t>(sizeof(double))) return nullptr;
      double d;
      memcpy(&d, p, sizeof(double));
      *value = Value::Double(d);
      return p + sizeof(double);
    }
    case DataType::kString:
    case DataType::kBlob:
    case DataType::kGuid: {
      std::string_view s;
      p = GetLengthPrefixed(p, limit, &s);
      if (p == nullptr) return nullptr;
      *value = type == DataType::kString
                   ? Value::String(std::string(s))
                   : (type == DataType::kBlob ? Value::Blob(std::string(s))
                                              : Value::Guid(std::string(s)));
      return p;
    }
  }
  return nullptr;
}

}  // namespace

// ----------------------------------------------------------- framing ---

Status WriteFrame(Socket* socket, MsgType type, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StringPrintf("wire: frame of %zu bytes exceeds the %u byte cap",
                     payload.size(), kMaxFrameBytes));
  }
  std::string frame;
  frame.reserve(5 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.push_back(static_cast<char>(type));
  frame.append(payload);
  return socket->WriteAll(frame);
}

Status ReadFrame(Socket* socket, Frame* frame) {
  char header[5];
  HTG_RETURN_IF_ERROR(socket->ReadFull(header, sizeof(header)));
  const uint32_t length = GetU32(header);
  if (length > kMaxFrameBytes) {
    return Status::Corruption(
        StringPrintf("wire: frame length %u exceeds the %u byte cap", length,
                     kMaxFrameBytes));
  }
  frame->type = static_cast<MsgType>(header[4]);
  frame->payload.resize(length);
  if (length > 0) {
    HTG_RETURN_IF_ERROR(socket->ReadFull(frame->payload.data(), length));
  }
  return Status::OK();
}

// ---------------------------------------------------- message codecs ---

void EncodeHello(const HelloMsg& msg, std::string* out) {
  PutVarint64(out, msg.version);
  PutLengthPrefixed(out, msg.peer_name);
}

Status DecodeHello(std::string_view payload, HelloMsg* msg) {
  const char* p = payload.data();
  const char* limit = p + payload.size();
  uint64_t version = 0;
  std::string_view name;
  p = GetVarint64(p, limit, &version);
  if (p != nullptr) p = GetLengthPrefixed(p, limit, &name);
  if (p == nullptr) return Truncated("Hello");
  msg->version = static_cast<uint32_t>(version);
  msg->peer_name = std::string(name);
  return Status::OK();
}

void EncodeHelloAck(const HelloAckMsg& msg, std::string* out) {
  PutVarint64(out, msg.version);
  PutLengthPrefixed(out, msg.server_name);
  PutVarint64(out, msg.session_id);
}

Status DecodeHelloAck(std::string_view payload, HelloAckMsg* msg) {
  const char* p = payload.data();
  const char* limit = p + payload.size();
  uint64_t version = 0;
  uint64_t session = 0;
  std::string_view name;
  p = GetVarint64(p, limit, &version);
  if (p != nullptr) p = GetLengthPrefixed(p, limit, &name);
  if (p != nullptr) p = GetVarint64(p, limit, &session);
  if (p == nullptr) return Truncated("HelloAck");
  msg->version = static_cast<uint32_t>(version);
  msg->server_name = std::string(name);
  msg->session_id = session;
  return Status::OK();
}

void EncodeQuery(const QueryMsg& msg, std::string* out) {
  PutLengthPrefixed(out, msg.sql);
  PutLengthPrefixed(out, msg.token);
}

Status DecodeQuery(std::string_view payload, QueryMsg* msg) {
  const char* p = payload.data();
  const char* limit = p + payload.size();
  std::string_view sql;
  std::string_view token;
  p = GetLengthPrefixed(p, limit, &sql);
  if (p != nullptr) p = GetLengthPrefixed(p, limit, &token);
  if (p == nullptr) return Truncated("Query");
  msg->sql = std::string(sql);
  msg->token = std::string(token);
  return Status::OK();
}

void EncodeExecute(const ExecuteMsg& msg, std::string* out) {
  PutVarint64(out, msg.statement_id);
  PutLengthPrefixed(out, msg.token);
}

Status DecodeExecute(std::string_view payload, ExecuteMsg* msg) {
  const char* p = payload.data();
  const char* limit = p + payload.size();
  uint64_t id = 0;
  std::string_view token;
  p = GetVarint64(p, limit, &id);
  if (p != nullptr) p = GetLengthPrefixed(p, limit, &token);
  if (p == nullptr) return Truncated("Execute");
  msg->statement_id = id;
  msg->token = std::string(token);
  return Status::OK();
}

void EncodeResultDone(const ResultDoneMsg& msg, std::string* out) {
  PutVarint64(out, msg.rows_affected);
  PutLengthPrefixed(out, msg.message);
}

Status DecodeResultDone(std::string_view payload, ResultDoneMsg* msg) {
  const char* p = payload.data();
  const char* limit = p + payload.size();
  uint64_t affected = 0;
  std::string_view message;
  p = GetVarint64(p, limit, &affected);
  if (p != nullptr) p = GetLengthPrefixed(p, limit, &message);
  if (p == nullptr) return Truncated("ResultDone");
  msg->rows_affected = affected;
  msg->message = std::string(message);
  return Status::OK();
}

void EncodeError(const Status& status, std::string* out) {
  PutVarint64(out, static_cast<uint64_t>(status.code()));
  PutLengthPrefixed(out, status.message());
}

Status DecodeError(std::string_view payload, ErrorMsg* msg) {
  const char* p = payload.data();
  const char* limit = p + payload.size();
  uint64_t code = 0;
  std::string_view message;
  p = GetVarint64(p, limit, &code);
  if (p != nullptr) p = GetLengthPrefixed(p, limit, &message);
  if (p == nullptr) return Truncated("Error");
  if (code > static_cast<uint64_t>(StatusCode::kExecError)) {
    return Status::Corruption(
        StringPrintf("wire: unknown status code %llu",
                     static_cast<unsigned long long>(code)));
  }
  msg->code = static_cast<StatusCode>(code);
  msg->message = std::string(message);
  return Status::OK();
}

void EncodeU64(uint64_t v, std::string* out) { PutVarint64(out, v); }

Status DecodeU64(std::string_view payload, uint64_t* v) {
  const char* p =
      GetVarint64(payload.data(), payload.data() + payload.size(), v);
  if (p == nullptr) return Truncated("u64");
  return Status::OK();
}

void EncodeSchema(const Schema& schema, std::string* out) {
  PutVarint64(out, static_cast<uint64_t>(schema.num_columns()));
  for (const Column& column : schema.columns()) {
    PutLengthPrefixed(out, column.name);
    out->push_back(static_cast<char>(static_cast<uint8_t>(column.type)));
    out->push_back(column.nullable ? 1 : 0);
  }
}

Status DecodeSchema(std::string_view payload, Schema* schema) {
  const char* p = payload.data();
  const char* limit = p + payload.size();
  uint64_t ncols = 0;
  p = GetVarint64(p, limit, &ncols);
  if (p == nullptr) return Truncated("ResultHeader");
  Schema out;
  for (uint64_t i = 0; i < ncols; ++i) {
    std::string_view name;
    p = GetLengthPrefixed(p, limit, &name);
    if (p == nullptr || limit - p < 2) return Truncated("ResultHeader");
    Column column;
    column.name = std::string(name);
    const uint8_t type = static_cast<uint8_t>(*p++);
    if (type > static_cast<uint8_t>(DataType::kGuid)) {
      return Status::Corruption(
          StringPrintf("wire: unknown column type %u", type));
    }
    column.type = static_cast<DataType>(type);
    column.nullable = *p++ != 0;
    out.AddColumn(std::move(column));
  }
  *schema = std::move(out);
  return Status::OK();
}

void EncodeRowBatch(const std::vector<Row>& rows, size_t begin, size_t end,
                    std::string* out) {
  PutVarint64(out, end - begin);
  for (size_t r = begin; r < end; ++r) {
    PutVarint64(out, rows[r].size());
    for (const Value& value : rows[r]) EncodeValue(value, out);
  }
}

Status DecodeRowBatch(std::string_view payload, std::vector<Row>* rows) {
  const char* p = payload.data();
  const char* limit = p + payload.size();
  uint64_t nrows = 0;
  p = GetVarint64(p, limit, &nrows);
  if (p == nullptr) return Truncated("ResultBatch");
  for (uint64_t r = 0; r < nrows; ++r) {
    uint64_t nvals = 0;
    p = GetVarint64(p, limit, &nvals);
    if (p == nullptr) return Truncated("ResultBatch");
    Row row;
    row.reserve(nvals);
    for (uint64_t i = 0; i < nvals; ++i) {
      Value value;
      p = DecodeValue(p, limit, &value);
      if (p == nullptr) return Truncated("ResultBatch");
      row.push_back(std::move(value));
    }
    rows->push_back(std::move(row));
  }
  return Status::OK();
}

}  // namespace htg::server
