// Quickstart: the paper's §3.3 hybrid design in a dozen statements.
//
// Creates a database, declares a FILESTREAM table for raw lane files,
// bulk-imports a FASTQ, inspects the metadata, and analyzes the reads
// declaratively through the ListShortReads wrapper TVF — without ever
// converting the lane file out of its original format.
//
//   ./examples/quickstart

#include <cstdio>

#include "catalog/database.h"
#include "genomics/formats.h"
#include "genomics/reference.h"
#include "genomics/register.h"
#include "genomics/simulator.h"
#include "sql/engine.h"

using htg::Database;
using htg::DatabaseOptions;
using htg::Result;
using htg::sql::QueryResult;
using htg::sql::SqlEngine;

namespace {

void Run(SqlEngine& engine, const std::string& sql) {
  printf("SQL> %s\n", sql.c_str());
  Result<QueryResult> result = engine.Execute(sql);
  if (!result.ok()) {
    printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  printf("%s\n", result->ToString(10).c_str());
}

}  // namespace

int main() {
  // A synthetic flowcell lane stands in for the sequencer output.
  htg::genomics::ReferenceGenome reference =
      htg::genomics::ReferenceGenome::Random(200'000, 4, 7);
  htg::genomics::SimulatorOptions sim_options;
  sim_options.seed = 8;
  htg::genomics::ReadSimulator simulator(&reference, sim_options);
  const std::string fastq = "/tmp/htgdb_quickstart_855_s_1.fastq";
  if (!htg::genomics::WriteFastqFile(fastq,
                                     simulator.SimulateResequencing(5'000))
           .ok()) {
    fprintf(stderr, "cannot write %s\n", fastq.c_str());
    return 1;
  }

  DatabaseOptions options;
  options.filestream_root = "/tmp/htgdb_quickstart_fs";
  Result<std::unique_ptr<Database>> db = Database::Open("quickstart", options);
  if (!db.ok()) {
    fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  (*db)->filestream()->Clear().ok();
  if (!htg::genomics::RegisterGenomicsExtensions(db->get()).ok()) return 1;
  SqlEngine engine(db->get());

  // The paper's ShortReadFiles table: lane files under engine control.
  Run(engine,
      "CREATE TABLE ShortReadFiles ("
      " guid UNIQUEIDENTIFIER ROWGUIDCOL PRIMARY KEY,"
      " sample INT, lane INT,"
      " reads VARBINARY(MAX) FILESTREAM"
      ") FILESTREAM_ON FileStreamGroup");

  // Bulk-import the lane file (OPENROWSET ... SINGLE_BLOB).
  Run(engine,
      "INSERT INTO ShortReadFiles (guid, sample, lane, reads) "
      "SELECT NEWID(), 855, 1, * "
      "FROM OPENROWSET(BULK '" + fastq + "', SINGLE_BLOB)");

  // Check the FileStream metadata: the BLOB lives as a file, full size
  // visible through DATALENGTH, path through PATHNAME.
  Run(engine,
      "SELECT guid, sample, lane, PATHNAME(reads), DATALENGTH(reads) "
      "FROM ShortReadFiles");

  // Stream the records back out relationally.
  Run(engine, "SELECT TOP 3 * FROM ListShortReads(855, 1, 'FastQ')");

  // ... and analyze them with plain SQL: reads free of uncalled bases,
  // average base quality, the reverse complement UDF.
  Run(engine,
      "SELECT COUNT(*) AS clean_reads "
      "FROM ListShortReads(855, 1, 'FastQ') "
      "WHERE CHARINDEX('N', short_read_seq) = 0");
  Run(engine,
      "SELECT TOP 3 short_read_seq, REVCOMP(short_read_seq) AS revcomp, "
      "PHRED_AVG(quality) AS avg_q "
      "FROM ListShortReads(855, 1, 'FastQ')");

  printf("quickstart complete.\n");
  return 0;
}
