// Digital gene expression study (the paper's Example 2, §2.1.2):
//
//   1. simulate two mRNA samples (a "healthy" and a "tumor" profile whose
//      gene abundances differ),
//   2. bin unique tags per sample with the declarative Query 1,
//   3. align the tags and aggregate per-gene expression with Query 2,
//   4. run the tertiary differential-expression analysis between the two
//      samples.
//
//   ./examples/digital_gene_expression

#include <cstdio>

#include "common/string_util.h"
#include "genomics/aligner.h"
#include "genomics/gene_expression.h"
#include "genomics/register.h"
#include "genomics/simulator.h"
#include "sql/engine.h"
#include "workflow/loaders.h"
#include "workflow/schema.h"

using htg::Result;
using htg::Row;
using htg::Value;
using htg::sql::QueryResult;

namespace {

struct Fatal {
  explicit Fatal(const htg::Status& status) {
    fprintf(stderr, "fatal: %s\n", status.ToString().c_str());
    exit(1);
  }
};

void Check(const htg::Status& status) {
  if (!status.ok()) Fatal f(status);
}

template <typename T>
T Check(htg::Result<T> result) {
  if (!result.ok()) Fatal f(result.status());
  return std::move(*result);
}

QueryResult Exec(htg::sql::SqlEngine& engine, const std::string& sql) {
  Result<QueryResult> result = engine.Execute(sql);
  if (!result.ok()) Fatal f(result.status());
  return std::move(*result);
}

}  // namespace

int main() {
  // Reference genome and two samples with different expression profiles:
  // sample 2 swaps the Zipf rank order so some genes change abundance.
  htg::genomics::ReferenceGenome reference =
      htg::genomics::ReferenceGenome::Random(1'000'000, 8, 100);
  htg::genomics::DgeOptions dge;
  dge.num_genes = 2'000;

  htg::genomics::SimulatorOptions healthy_options;
  healthy_options.seed = 101;
  htg::genomics::ReadSimulator healthy_sim(&reference, healthy_options);
  std::vector<htg::genomics::ShortRead> healthy =
      healthy_sim.SimulateDge(40'000, dge);

  htg::genomics::SimulatorOptions tumor_options;
  tumor_options.seed = 202;  // different seed → different gene sites
  htg::genomics::ReadSimulator tumor_sim(&reference, tumor_options);
  std::vector<htg::genomics::ShortRead> tumor =
      tumor_sim.SimulateDge(40'000, dge);

  htg::DatabaseOptions options;
  options.filestream_root = "/tmp/htgdb_dge_fs";
  std::unique_ptr<htg::Database> db =
      Check(htg::Database::Open("dge", options));
  Check(htg::genomics::RegisterGenomicsExtensions(db.get()));
  htg::sql::SqlEngine engine(db.get());
  Check(htg::workflow::CreateGenomicsSchema(&engine, {}));

  // Load both samples into the shared normalized schema: sample ids keep
  // the workflow context queryable (which lane, which sample group).
  Exec(engine, "INSERT INTO Experiment VALUES "
               "(1, 'dge-demo', 'digital gene expression', 'IL4', '2008-11')");
  Exec(engine, "INSERT INTO SampleGroup VALUES (1, 1, 'healthy'), "
               "(1, 2, 'tumor')");
  Exec(engine, "INSERT INTO Sample VALUES (1, 1, 1, 'healthy-lane', 855, 1), "
               "(1, 2, 1, 'tumor-lane', 855, 2)");
  Check(htg::workflow::LoadReads(db.get(), "Read", healthy, {1, 1, 1}));
  Check(htg::workflow::LoadReads(db.get(), "Read", tumor, {1, 2, 1},
                                 static_cast<int64_t>(healthy.size())));

  // --- Query 1 per sample: bin unique tags --------------------------
  printf("== Query 1: top tags per sample ==\n");
  for (int sg = 1; sg <= 2; ++sg) {
    QueryResult top = Exec(
        engine,
        htg::StringPrintf(
            "SELECT TOP 5 ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC) AS rank,"
            " COUNT(*) AS freq, short_read_seq "
            "FROM Read WHERE r_e_id=1 AND r_sg_id=%d AND r_s_id=1 "
            "AND CHARINDEX('N', short_read_seq) = 0 "
            "GROUP BY short_read_seq ORDER BY rank",
            sg));
    printf("-- sample group %d --\n%s\n", sg, top.ToString().c_str());
  }

  // --- align tags + Query 2: per-gene expression ---------------------
  printf("== Query 2: gene expression per sample ==\n");
  htg::genomics::Aligner aligner(&reference, {});
  Check(htg::workflow::LoadReferenceCatalog(db.get(), "ReferenceSequence",
                                            reference));
  for (int sg = 1; sg <= 2; ++sg) {
    const auto& reads = sg == 1 ? healthy : tumor;
    std::vector<htg::genomics::TagCount> tags =
        htg::genomics::BinUniqueReads(reads);
    Check(htg::workflow::LoadTags(db.get(), "Tag", tags, {1, sg, 1}));
    std::vector<htg::genomics::ShortRead> tag_reads;
    for (const auto& t : tags) {
      tag_reads.push_back({"tag" + std::to_string(t.rank), t.sequence, ""});
    }
    // Gene id = the tag's alignment locus bucketed to 1 kbp (a gene-model
    // stand-in; a real annotation catalog would join here).
    std::vector<htg::genomics::Alignment> alignments =
        aligner.AlignBatch(tag_reads);
    Check(htg::workflow::LoadAlignments(db.get(), "Alignment", alignments,
                                        {1, sg, 1}));
    // Query 2 (paper §4.2.2): aggregate tag frequency per locus.
    Exec(engine,
         htg::StringPrintf(
             "INSERT INTO GeneExpression "
             "SELECT a_g_id * 100000 + a_pos / 1000, a_e_id, a_sg_id, a_s_id,"
             " SUM(t_frequency), COUNT(a_r_id) "
             "FROM Alignment JOIN Tag ON (a_r_id = t_id - 1 "
             " AND a_e_id = t_e_id AND a_sg_id = t_sg_id AND a_s_id = t_s_id)"
             " WHERE a_e_id=1 AND a_sg_id=%d AND a_s_id=1 "
             "GROUP BY a_g_id * 100000 + a_pos / 1000, a_e_id, a_sg_id, "
             "a_s_id",
             sg));
    QueryResult expressed = Exec(
        engine,
        htg::StringPrintf("SELECT TOP 5 ge_g_id AS locus, total_frequency, "
                          "tag_count FROM GeneExpression WHERE ge_sg_id=%d "
                          "ORDER BY total_frequency DESC",
                          sg));
    printf("-- sample group %d: top expressed loci --\n%s\n", sg,
           expressed.ToString().c_str());
  }

  // --- tertiary analysis: differential expression --------------------
  printf("== differential expression (healthy vs tumor) ==\n");
  auto fetch = [&](int sg) {
    QueryResult r = Exec(
        engine, htg::StringPrintf(
                    "SELECT ge_g_id, total_frequency, tag_count "
                    "FROM GeneExpression WHERE ge_sg_id=%d", sg));
    std::vector<htg::genomics::GeneExpression> out;
    for (const Row& row : r.rows) {
      out.push_back({row[0].AsInt64(), row[1].AsInt64(), row[2].AsInt64()});
    }
    return out;
  };
  std::vector<htg::genomics::DifferentialExpression> diff =
      htg::genomics::CompareExpression(fetch(1), fetch(2));
  printf("%-12s %10s %10s %8s %10s\n", "locus", "healthy", "tumor", "log2FC",
         "chi^2");
  for (size_t i = 0; i < diff.size() && i < 10; ++i) {
    printf("%-12lld %10lld %10lld %8.2f %10.1f\n",
           static_cast<long long>(diff[i].gene_id),
           static_cast<long long>(diff[i].count_a),
           static_cast<long long>(diff[i].count_b),
           diff[i].log2_fold_change, diff[i].chi_square);
  }
  printf("\ndigital gene expression example complete.\n");
  return 0;
}
