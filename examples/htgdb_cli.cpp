// htgdb_cli — command-line driver for the full sequencing workflow:
//
//   htgdb_cli simulate <dir> [reads] [ref_bases]   synthesize a lane + reference
//   htgdb_cli import   <dir>                       lane.fastq → FILESTREAM table
//   htgdb_cli bin      <dir>                       Query 1: unique-read binning
//   htgdb_cli align    <dir>                       AlignReads TVF → Alignment table
//   htgdb_cli consensus <dir>                      Query 3: sliding-window consensus
//   htgdb_cli all      <dir>                       everything, with provenance
//
// Artifacts live in <dir>; the database's FileStream store in <dir>/fs.

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "genomics/register.h"
#include "genomics/simulator.h"
#include "sql/engine.h"
#include "workflow/loaders.h"
#include "workflow/provenance.h"
#include "workflow/schema.h"

namespace {

using htg::Result;
using htg::Status;

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "htgdb_cli: %s: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

template <typename T>
T Check(Result<T> result, const char* what) {
  Check(result.ok() ? Status::OK() : result.status(), what);
  return std::move(*result);
}

struct Session {
  std::unique_ptr<htg::Database> db;
  std::unique_ptr<htg::sql::SqlEngine> engine;
  std::string dir;
};

Session OpenSession(const std::string& dir) {
  std::filesystem::create_directories(dir);
  htg::DatabaseOptions options;
  options.filestream_root = dir + "/fs";
  Session session;
  session.db = Check(htg::Database::Open("htgdb", options), "open database");
  Check(htg::genomics::RegisterGenomicsExtensions(session.db.get()),
        "register extensions");
  session.engine = std::make_unique<htg::sql::SqlEngine>(session.db.get());
  session.dir = dir;
  return session;
}

htg::sql::QueryResult Exec(Session& session, const std::string& sql) {
  return Check(session.engine->Execute(sql), sql.c_str());
}

void CmdSimulate(Session& session, uint64_t reads, uint64_t ref_bases) {
  htg::genomics::ReferenceGenome reference =
      htg::genomics::ReferenceGenome::Random(ref_bases, 4, 20090104);
  Check(reference.SaveFasta(session.dir + "/reference.fa"), "save reference");
  htg::genomics::SimulatorOptions options;
  options.seed = 20090105;
  htg::genomics::ReadSimulator simulator(&reference, options);
  Check(htg::genomics::WriteFastqFile(session.dir + "/lane.fastq",
                                      simulator.SimulateResequencing(reads)),
        "write lane");
  printf("simulated %llu reads over %llu reference bases into %s\n",
         static_cast<unsigned long long>(reads),
         static_cast<unsigned long long>(ref_bases), session.dir.c_str());
}

void EnsureSchema(Session& session) {
  if (!session.db->GetTable("ShortReadFiles").ok()) {
    Check(htg::workflow::CreateGenomicsSchema(session.engine.get(), {}),
          "create schema");
  }
}

void CmdImport(Session& session) {
  EnsureSchema(session);
  Check(htg::workflow::ImportFastqAsFileStream(
            session.engine.get(), "ShortReadFiles",
            session.dir + "/lane.fastq", 855, 1),
        "import lane");
  htg::sql::QueryResult meta = Exec(
      session, "SELECT sample, lane, DATALENGTH(reads) FROM ShortReadFiles");
  printf("%s", meta.ToString().c_str());
}

void CmdBin(Session& session) {
  EnsureSchema(session);
  htg::sql::QueryResult top = Exec(session, R"sql(
      SELECT TOP 10 ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC) AS rank,
             COUNT(*) AS freq, short_read_seq
        FROM ListShortReads(855, 1, 'FastQ')
       WHERE CHARINDEX('N', short_read_seq) = 0
       GROUP BY short_read_seq ORDER BY rank)sql");
  printf("%s", top.ToString().c_str());
}

void CmdAlign(Session& session) {
  EnsureSchema(session);
  Exec(session, "TRUNCATE TABLE Alignment");
  htg::Stopwatch timer;
  htg::sql::QueryResult inserted = Exec(
      session, htg::StringPrintf(
                   "INSERT INTO Alignment (a_e_id, a_sg_id, a_s_id, a_r_id, "
                   "a_g_id, a_pos, a_strand, a_mismatches, a_mapq) "
                   "SELECT 1, 1, 1, 0, 0, position, reverse_strand, "
                   "mismatches, mapq "
                   "FROM AlignReads(855, 1, '%s/reference.fa', 2)",
                   session.dir.c_str()));
  printf("aligned: %s in %.2f s\n", inserted.message.c_str(),
         timer.ElapsedSeconds());
}

void CmdConsensus(Session& session) {
  EnsureSchema(session);
  // Stream alignments + oriented sequences into a position-clustered
  // table, then run the sliding-window Query 3.
  if (!session.db->GetTable("AlignmentPos").ok()) {
    Exec(session,
         "CREATE TABLE AlignmentPos (a_g_id INT NOT NULL, a_pos BIGINT NOT "
         "NULL, seq VARCHAR(300) NOT NULL, qual VARCHAR(300)) "
         "CLUSTER BY (a_g_id, a_pos)");
  } else {
    Exec(session, "TRUNCATE TABLE AlignmentPos");
  }
  // The AlignReads TVF re-derives oriented sequences via REVCOMP.
  Exec(session,
       htg::StringPrintf(
           "INSERT INTO AlignmentPos "
           "SELECT 0, position, read_name, NULL "
           "FROM AlignReads(855, 1, '%s/reference.fa', 2) WHERE 1 = 0",
           session.dir.c_str()));  // schema warm-up no-op
  htg::sql::QueryResult consensus = Exec(session, R"sql(
      SELECT a_g_id, LEN(AssembleConsensus(a_pos, seq, qual)) AS bases
        FROM AlignmentPos GROUP BY a_g_id ORDER BY a_g_id)sql");
  if (consensus.rows.empty()) {
    printf("consensus: AlignmentPos is empty — run the thousand_genomes "
           "example or load oriented alignments first.\n");
  } else {
    printf("%s", consensus.ToString().c_str());
  }
}

void CmdAll(Session& session, uint64_t reads, uint64_t ref_bases) {
  htg::workflow::ProvenanceRecorder recorder =
      Check(htg::workflow::ProvenanceRecorder::Open(session.engine.get()),
            "provenance");
  CmdSimulate(session, reads, ref_bases);
  Check(recorder
            .Record("htgdb-simulate",
                    htg::StringPrintf("reads=%llu",
                                      static_cast<unsigned long long>(reads)),
                    "", "lane.fastq")
            .ok()
            ? Status::OK()
            : Status::Internal("record"),
        "record");
  CmdImport(session);
  recorder.Record("htgdb-import", "sample=855 lane=1", "lane.fastq",
                  "ShortReadFiles/855/1").ok();
  CmdBin(session);
  recorder.Record("Query1", "bin unique reads", "ShortReadFiles/855/1",
                  "unique-tags").ok();
  CmdAlign(session);
  recorder.Record("AlignReads", "ref=reference.fa mm=2",
                  "ShortReadFiles/855/1", "Alignment").ok();
  htg::sql::QueryResult lineage = Exec(
      session,
      "SELECT event_id, tool, parameters, output_artifact "
      "FROM DataProvenance ORDER BY event_id");
  printf("\nworkflow provenance:\n%s", lineage.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    fprintf(stderr,
            "usage: htgdb_cli <simulate|import|bin|align|consensus|all> "
            "<dir> [reads] [ref_bases]\n");
    return 2;
  }
  const std::string command = argv[1];
  const std::string dir = argv[2];
  const uint64_t reads = argc > 3 ? strtoull(argv[3], nullptr, 10) : 20000;
  const uint64_t ref_bases =
      argc > 4 ? strtoull(argv[4], nullptr, 10) : 200000;

  Session session = OpenSession(dir);
  if (command == "simulate") {
    CmdSimulate(session, reads, ref_bases);
  } else if (command == "import") {
    CmdImport(session);
  } else if (command == "bin") {
    CmdBin(session);
  } else if (command == "align") {
    CmdAlign(session);
  } else if (command == "consensus") {
    CmdConsensus(session);
  } else if (command == "all") {
    CmdAll(session, reads, ref_bases);
  } else {
    fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  }
  return 0;
}
