// An interactive SQL shell over the engine, with the genomics extensions
// registered — useful for exploring the schema and the wrapper TVFs.
//
//   ./examples/sql_shell [database_name]
//
//   htgdb> CREATE TABLE t (a INT, b VARCHAR(20));
//   htgdb> INSERT INTO t VALUES (1, 'ACGT');
//   htgdb> SELECT a, REVCOMP(b) FROM t;
//   htgdb> EXPLAIN SELECT COUNT(*) FROM t;
//   htgdb> \tables
//   htgdb> \q

#include <cstdio>
#include <iostream>
#include <string>

#include "catalog/database.h"
#include "common/stopwatch.h"
#include "genomics/register.h"
#include "sql/engine.h"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "shell";
  htg::DatabaseOptions options;
  options.filestream_root = "/tmp/htgdb_shell_" + name + "_fs";
  htg::Result<std::unique_ptr<htg::Database>> db =
      htg::Database::Open(name, options);
  if (!db.ok()) {
    fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  if (!htg::genomics::RegisterGenomicsExtensions(db->get()).ok()) return 1;
  htg::sql::SqlEngine engine(db->get());

  printf("htgdb shell — database '%s' (FileStream root %s)\n", name.c_str(),
         options.filestream_root.c_str());
  printf("end statements with ';'; \\tables lists tables; \\q quits.\n");

  std::string buffer;
  std::string line;
  printf("htgdb> ");
  fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == "\\q" || line == "\\quit") break;
    if (line == "\\tables") {
      for (const std::string& table : (*db)->ListTables()) {
        auto def = (*db)->GetTable(table);
        printf("  %-24s %10llu rows   %s\n", table.c_str(),
               static_cast<unsigned long long>((*def)->table->num_rows()),
               (*def)->schema.ToString().c_str());
      }
      printf("htgdb> ");
      fflush(stdout);
      continue;
    }
    buffer += line;
    buffer += '\n';
    if (buffer.find(';') != std::string::npos) {
      htg::Stopwatch timer;
      htg::Result<htg::sql::QueryResult> result = engine.Execute(buffer);
      if (!result.ok()) {
        printf("error: %s\n", result.status().ToString().c_str());
      } else {
        printf("%s(%.1f ms)\n", result->ToString(40).c_str(),
               timer.ElapsedMillis());
      }
      buffer.clear();
    }
    printf(buffer.empty() ? "htgdb> " : "   ...> ");
    fflush(stdout);
  }
  printf("\nbye.\n");
  return 0;
}
