// Re-sequencing workflow (the paper's Example 1, §2.1.1 — the 1000
// Genomes project): sequence an individual whose genome differs from the
// reference by point mutations, then recover those differences.
//
//   1. derive a donor genome from the reference by planting SNPs,
//   2. simulate a lane of short reads from the donor (with base errors),
//   3. align every read against the *reference* genome,
//   4. consensus-call the donor sequence with the sliding-window UDA
//      through SQL (the paper's optimized Query 3),
//   5. report called SNPs and score them against the planted truth.
//
//   ./examples/thousand_genomes

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "common/random.h"
#include "genomics/aligner.h"
#include "genomics/consensus.h"
#include "genomics/nucleotide.h"
#include "genomics/register.h"
#include "genomics/simulator.h"
#include "sql/engine.h"
#include "workflow/loaders.h"
#include "workflow/schema.h"

using htg::Result;
using htg::Row;
using htg::Value;

namespace {

void Check(const htg::Status& status) {
  if (!status.ok()) {
    fprintf(stderr, "fatal: %s\n", status.ToString().c_str());
    exit(1);
  }
}

template <typename T>
T Check(htg::Result<T> result) {
  Check(result.ok() ? htg::Status::OK() : result.status());
  return std::move(*result);
}

}  // namespace

int main() {
  constexpr uint64_t kGenomeBases = 300'000;
  constexpr int kChromosomes = 3;
  constexpr double kSnpRate = 0.001;  // ~1 SNP per kbp, human-like
  constexpr int kCoverage = 20;       // paper: 40x for quality

  // Reference genome and a donor with planted SNPs.
  htg::genomics::ReferenceGenome reference =
      htg::genomics::ReferenceGenome::Random(kGenomeBases, kChromosomes, 1000);
  htg::Random rng(1001);
  std::vector<htg::genomics::Chromosome> donor_chromosomes;
  std::map<std::pair<int, int64_t>, char> truth_snps;
  for (int c = 0; c < reference.num_chromosomes(); ++c) {
    htg::genomics::Chromosome chr = reference.chromosome(c);
    for (size_t i = 0; i < chr.sequence.size(); ++i) {
      if (rng.Bernoulli(kSnpRate)) {
        const int original = htg::genomics::BaseCode(chr.sequence[i]);
        int substitute = static_cast<int>(rng.Uniform(3));
        if (substitute >= original) ++substitute;
        chr.sequence[i] = htg::genomics::CodeBase(substitute);
        truth_snps[{c, static_cast<int64_t>(i)}] = chr.sequence[i];
      }
    }
    donor_chromosomes.push_back(std::move(chr));
  }
  htg::genomics::ReferenceGenome donor(std::move(donor_chromosomes));
  printf("planted %zu SNPs into the donor genome (%llu bases)\n\n",
         truth_snps.size(), static_cast<unsigned long long>(kGenomeBases));

  // Sequence the donor.
  htg::genomics::SimulatorOptions sim_options;
  sim_options.seed = 1002;
  sim_options.base_error_rate = 0.005;
  htg::genomics::ReadSimulator simulator(&donor, sim_options);
  const uint64_t num_reads = kGenomeBases * kCoverage / 36;
  std::vector<htg::genomics::ShortRead> reads =
      simulator.SimulateResequencing(num_reads);
  printf("sequenced %zu reads (~%dx coverage)\n", reads.size(), kCoverage);

  // Align against the reference (not the donor!).
  htg::genomics::AlignerOptions aligner_options;
  aligner_options.max_mismatches = 3;  // room for a SNP plus base errors
  htg::genomics::Aligner aligner(&reference, aligner_options);
  std::vector<htg::genomics::Alignment> alignments =
      aligner.AlignBatch(reads);
  printf("aligned %zu reads (%.1f%%)\n\n", alignments.size(),
         100.0 * alignments.size() / reads.size());

  // Load into the engine: the position-clustered physical design that
  // makes the sliding-window consensus plan stream without sorting.
  htg::DatabaseOptions options;
  options.filestream_root = "/tmp/htgdb_1000g_fs";
  std::unique_ptr<htg::Database> db =
      Check(htg::Database::Open("thousand_genomes", options));
  Check(htg::genomics::RegisterGenomicsExtensions(db.get()));
  htg::sql::SqlEngine engine(db.get());
  {
    Result<htg::sql::QueryResult> created = engine.Execute(R"sql(
        CREATE TABLE AlignmentPos (
          a_g_id INT NOT NULL,
          a_pos BIGINT NOT NULL,
          seq VARCHAR(300) NOT NULL,
          qual VARCHAR(300)
        ) CLUSTER BY (a_g_id, a_pos))sql");
    Check(created.ok() ? htg::Status::OK() : created.status());
  }
  auto* table = Check(db->GetTable("AlignmentPos"));
  for (const htg::genomics::Alignment& a : alignments) {
    const htg::genomics::ShortRead& r = reads[a.read_id];
    std::string seq = r.sequence;
    std::string qual = r.quality;
    if (a.reverse_strand) {
      seq = htg::genomics::ReverseComplement(seq);
      std::reverse(qual.begin(), qual.end());
    }
    Check(db->InsertRow(table, Row{Value::Int32(a.chromosome),
                                   Value::Int64(a.position),
                                   Value::String(std::move(seq)),
                                   Value::String(std::move(qual))}));
  }

  // Consensus calling: the paper's optimized Query 3.
  printf("== consensus calling (Query 3, sliding-window UDA) ==\n");
  printf("%s\n", Check(engine.Explain(
                           "SELECT a_g_id, AssembleConsensus(a_pos, seq, "
                           "qual) FROM AlignmentPos GROUP BY a_g_id"))
                     .c_str());
  Result<htg::sql::QueryResult> consensus_result = engine.Execute(
      "SELECT a_g_id, AssembleConsensus(a_pos, seq, qual) AS consensus, "
      "MIN(a_pos) AS start_pos "
      "FROM AlignmentPos GROUP BY a_g_id ORDER BY a_g_id");
  Check(consensus_result.ok() ? htg::Status::OK()
                              : consensus_result.status());

  // SNP calling: diff consensus against the reference.
  std::set<std::pair<int, int64_t>> called;
  std::map<std::pair<int, int64_t>, char> called_base;
  for (const Row& row : consensus_result->rows) {
    const int chrom = static_cast<int>(row[0].AsInt64());
    const std::string& consensus = row[1].AsString();
    const int64_t start = row[2].AsInt64();
    for (const htg::genomics::Snp& snp : htg::genomics::FindSnps(
             reference.chromosome(chrom).sequence, consensus, start)) {
      called.insert({chrom, snp.position});
      called_base[{chrom, snp.position}] = snp.called_base;
    }
  }

  // Score against the planted truth.
  size_t true_positives = 0;
  size_t correct_allele = 0;
  for (const auto& [locus, base] : truth_snps) {
    auto it = called_base.find(locus);
    if (it != called_base.end()) {
      ++true_positives;
      if (it->second == base) ++correct_allele;
    }
  }
  const size_t false_positives = called.size() - true_positives;
  printf("== SNP report ==\n");
  printf("planted SNPs        : %zu\n", truth_snps.size());
  printf("called SNPs         : %zu\n", called.size());
  printf("recall              : %.1f%%\n",
         100.0 * true_positives / truth_snps.size());
  printf("precision           : %.1f%%\n",
         called.empty() ? 0.0 : 100.0 * true_positives / called.size());
  printf("correct allele      : %.1f%% of recovered\n",
         true_positives == 0 ? 0.0
                             : 100.0 * correct_allele / true_positives);
  printf("false positives     : %zu\n", false_positives);
  printf("\nthousand-genomes example complete.\n");
  return 0;
}
