file(REMOVE_RECURSE
  "libhtg_exec.a"
)
