file(REMOVE_RECURSE
  "CMakeFiles/htg_exec.dir/aggregate_ops.cc.o"
  "CMakeFiles/htg_exec.dir/aggregate_ops.cc.o.d"
  "CMakeFiles/htg_exec.dir/apply_ops.cc.o"
  "CMakeFiles/htg_exec.dir/apply_ops.cc.o.d"
  "CMakeFiles/htg_exec.dir/basic_ops.cc.o"
  "CMakeFiles/htg_exec.dir/basic_ops.cc.o.d"
  "CMakeFiles/htg_exec.dir/expression.cc.o"
  "CMakeFiles/htg_exec.dir/expression.cc.o.d"
  "CMakeFiles/htg_exec.dir/join_ops.cc.o"
  "CMakeFiles/htg_exec.dir/join_ops.cc.o.d"
  "CMakeFiles/htg_exec.dir/operator.cc.o"
  "CMakeFiles/htg_exec.dir/operator.cc.o.d"
  "CMakeFiles/htg_exec.dir/parallel.cc.o"
  "CMakeFiles/htg_exec.dir/parallel.cc.o.d"
  "CMakeFiles/htg_exec.dir/sort_ops.cc.o"
  "CMakeFiles/htg_exec.dir/sort_ops.cc.o.d"
  "libhtg_exec.a"
  "libhtg_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
