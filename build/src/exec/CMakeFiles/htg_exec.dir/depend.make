# Empty dependencies file for htg_exec.
# This may be replaced when dependencies are built.
