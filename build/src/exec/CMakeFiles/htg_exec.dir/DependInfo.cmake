
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregate_ops.cc" "src/exec/CMakeFiles/htg_exec.dir/aggregate_ops.cc.o" "gcc" "src/exec/CMakeFiles/htg_exec.dir/aggregate_ops.cc.o.d"
  "/root/repo/src/exec/apply_ops.cc" "src/exec/CMakeFiles/htg_exec.dir/apply_ops.cc.o" "gcc" "src/exec/CMakeFiles/htg_exec.dir/apply_ops.cc.o.d"
  "/root/repo/src/exec/basic_ops.cc" "src/exec/CMakeFiles/htg_exec.dir/basic_ops.cc.o" "gcc" "src/exec/CMakeFiles/htg_exec.dir/basic_ops.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/exec/CMakeFiles/htg_exec.dir/expression.cc.o" "gcc" "src/exec/CMakeFiles/htg_exec.dir/expression.cc.o.d"
  "/root/repo/src/exec/join_ops.cc" "src/exec/CMakeFiles/htg_exec.dir/join_ops.cc.o" "gcc" "src/exec/CMakeFiles/htg_exec.dir/join_ops.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/exec/CMakeFiles/htg_exec.dir/operator.cc.o" "gcc" "src/exec/CMakeFiles/htg_exec.dir/operator.cc.o.d"
  "/root/repo/src/exec/parallel.cc" "src/exec/CMakeFiles/htg_exec.dir/parallel.cc.o" "gcc" "src/exec/CMakeFiles/htg_exec.dir/parallel.cc.o.d"
  "/root/repo/src/exec/sort_ops.cc" "src/exec/CMakeFiles/htg_exec.dir/sort_ops.cc.o" "gcc" "src/exec/CMakeFiles/htg_exec.dir/sort_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/htg_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/htg_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/htg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/htg_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/htg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
