file(REMOVE_RECURSE
  "libhtg_types.a"
)
