file(REMOVE_RECURSE
  "CMakeFiles/htg_types.dir/data_type.cc.o"
  "CMakeFiles/htg_types.dir/data_type.cc.o.d"
  "CMakeFiles/htg_types.dir/schema.cc.o"
  "CMakeFiles/htg_types.dir/schema.cc.o.d"
  "CMakeFiles/htg_types.dir/value.cc.o"
  "CMakeFiles/htg_types.dir/value.cc.o.d"
  "libhtg_types.a"
  "libhtg_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
