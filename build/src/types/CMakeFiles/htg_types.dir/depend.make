# Empty dependencies file for htg_types.
# This may be replaced when dependencies are built.
