# Empty compiler generated dependencies file for htg_genomics.
# This may be replaced when dependencies are built.
