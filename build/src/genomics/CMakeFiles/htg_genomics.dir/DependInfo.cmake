
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genomics/align_tvf.cc" "src/genomics/CMakeFiles/htg_genomics.dir/align_tvf.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/align_tvf.cc.o.d"
  "/root/repo/src/genomics/aligner.cc" "src/genomics/CMakeFiles/htg_genomics.dir/aligner.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/aligner.cc.o.d"
  "/root/repo/src/genomics/consensus.cc" "src/genomics/CMakeFiles/htg_genomics.dir/consensus.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/consensus.cc.o.d"
  "/root/repo/src/genomics/dna_sequence.cc" "src/genomics/CMakeFiles/htg_genomics.dir/dna_sequence.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/dna_sequence.cc.o.d"
  "/root/repo/src/genomics/file_wrapper.cc" "src/genomics/CMakeFiles/htg_genomics.dir/file_wrapper.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/file_wrapper.cc.o.d"
  "/root/repo/src/genomics/formats.cc" "src/genomics/CMakeFiles/htg_genomics.dir/formats.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/formats.cc.o.d"
  "/root/repo/src/genomics/gene_expression.cc" "src/genomics/CMakeFiles/htg_genomics.dir/gene_expression.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/gene_expression.cc.o.d"
  "/root/repo/src/genomics/nucleotide.cc" "src/genomics/CMakeFiles/htg_genomics.dir/nucleotide.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/nucleotide.cc.o.d"
  "/root/repo/src/genomics/reference.cc" "src/genomics/CMakeFiles/htg_genomics.dir/reference.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/reference.cc.o.d"
  "/root/repo/src/genomics/register.cc" "src/genomics/CMakeFiles/htg_genomics.dir/register.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/register.cc.o.d"
  "/root/repo/src/genomics/simulator.cc" "src/genomics/CMakeFiles/htg_genomics.dir/simulator.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/simulator.cc.o.d"
  "/root/repo/src/genomics/srf.cc" "src/genomics/CMakeFiles/htg_genomics.dir/srf.cc.o" "gcc" "src/genomics/CMakeFiles/htg_genomics.dir/srf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/htg_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/htg_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/htg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/htg_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/htg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
