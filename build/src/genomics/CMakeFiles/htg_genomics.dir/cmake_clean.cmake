file(REMOVE_RECURSE
  "CMakeFiles/htg_genomics.dir/align_tvf.cc.o"
  "CMakeFiles/htg_genomics.dir/align_tvf.cc.o.d"
  "CMakeFiles/htg_genomics.dir/aligner.cc.o"
  "CMakeFiles/htg_genomics.dir/aligner.cc.o.d"
  "CMakeFiles/htg_genomics.dir/consensus.cc.o"
  "CMakeFiles/htg_genomics.dir/consensus.cc.o.d"
  "CMakeFiles/htg_genomics.dir/dna_sequence.cc.o"
  "CMakeFiles/htg_genomics.dir/dna_sequence.cc.o.d"
  "CMakeFiles/htg_genomics.dir/file_wrapper.cc.o"
  "CMakeFiles/htg_genomics.dir/file_wrapper.cc.o.d"
  "CMakeFiles/htg_genomics.dir/formats.cc.o"
  "CMakeFiles/htg_genomics.dir/formats.cc.o.d"
  "CMakeFiles/htg_genomics.dir/gene_expression.cc.o"
  "CMakeFiles/htg_genomics.dir/gene_expression.cc.o.d"
  "CMakeFiles/htg_genomics.dir/nucleotide.cc.o"
  "CMakeFiles/htg_genomics.dir/nucleotide.cc.o.d"
  "CMakeFiles/htg_genomics.dir/reference.cc.o"
  "CMakeFiles/htg_genomics.dir/reference.cc.o.d"
  "CMakeFiles/htg_genomics.dir/register.cc.o"
  "CMakeFiles/htg_genomics.dir/register.cc.o.d"
  "CMakeFiles/htg_genomics.dir/simulator.cc.o"
  "CMakeFiles/htg_genomics.dir/simulator.cc.o.d"
  "CMakeFiles/htg_genomics.dir/srf.cc.o"
  "CMakeFiles/htg_genomics.dir/srf.cc.o.d"
  "libhtg_genomics.a"
  "libhtg_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
