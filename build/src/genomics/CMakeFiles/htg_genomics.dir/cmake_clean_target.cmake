file(REMOVE_RECURSE
  "libhtg_genomics.a"
)
