file(REMOVE_RECURSE
  "libhtg_common.a"
)
