file(REMOVE_RECURSE
  "CMakeFiles/htg_common.dir/guid.cc.o"
  "CMakeFiles/htg_common.dir/guid.cc.o.d"
  "CMakeFiles/htg_common.dir/random.cc.o"
  "CMakeFiles/htg_common.dir/random.cc.o.d"
  "CMakeFiles/htg_common.dir/status.cc.o"
  "CMakeFiles/htg_common.dir/status.cc.o.d"
  "CMakeFiles/htg_common.dir/string_util.cc.o"
  "CMakeFiles/htg_common.dir/string_util.cc.o.d"
  "CMakeFiles/htg_common.dir/thread_pool.cc.o"
  "CMakeFiles/htg_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/htg_common.dir/varint.cc.o"
  "CMakeFiles/htg_common.dir/varint.cc.o.d"
  "libhtg_common.a"
  "libhtg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
