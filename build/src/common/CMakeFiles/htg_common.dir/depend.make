# Empty dependencies file for htg_common.
# This may be replaced when dependencies are built.
