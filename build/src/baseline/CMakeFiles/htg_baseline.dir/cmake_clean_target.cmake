file(REMOVE_RECURSE
  "libhtg_baseline.a"
)
