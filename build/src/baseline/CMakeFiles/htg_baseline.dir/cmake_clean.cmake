file(REMOVE_RECURSE
  "CMakeFiles/htg_baseline.dir/file_pipeline.cc.o"
  "CMakeFiles/htg_baseline.dir/file_pipeline.cc.o.d"
  "CMakeFiles/htg_baseline.dir/script_binning.cc.o"
  "CMakeFiles/htg_baseline.dir/script_binning.cc.o.d"
  "libhtg_baseline.a"
  "libhtg_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
