# Empty dependencies file for htg_baseline.
# This may be replaced when dependencies are built.
