file(REMOVE_RECURSE
  "libhtg_storage.a"
)
