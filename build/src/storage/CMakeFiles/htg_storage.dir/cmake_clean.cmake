file(REMOVE_RECURSE
  "CMakeFiles/htg_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/htg_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/htg_storage.dir/clustered_table.cc.o"
  "CMakeFiles/htg_storage.dir/clustered_table.cc.o.d"
  "CMakeFiles/htg_storage.dir/filestream.cc.o"
  "CMakeFiles/htg_storage.dir/filestream.cc.o.d"
  "CMakeFiles/htg_storage.dir/heap_table.cc.o"
  "CMakeFiles/htg_storage.dir/heap_table.cc.o.d"
  "CMakeFiles/htg_storage.dir/page.cc.o"
  "CMakeFiles/htg_storage.dir/page.cc.o.d"
  "CMakeFiles/htg_storage.dir/row_codec.cc.o"
  "CMakeFiles/htg_storage.dir/row_codec.cc.o.d"
  "libhtg_storage.a"
  "libhtg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
