
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bplus_tree.cc" "src/storage/CMakeFiles/htg_storage.dir/bplus_tree.cc.o" "gcc" "src/storage/CMakeFiles/htg_storage.dir/bplus_tree.cc.o.d"
  "/root/repo/src/storage/clustered_table.cc" "src/storage/CMakeFiles/htg_storage.dir/clustered_table.cc.o" "gcc" "src/storage/CMakeFiles/htg_storage.dir/clustered_table.cc.o.d"
  "/root/repo/src/storage/filestream.cc" "src/storage/CMakeFiles/htg_storage.dir/filestream.cc.o" "gcc" "src/storage/CMakeFiles/htg_storage.dir/filestream.cc.o.d"
  "/root/repo/src/storage/heap_table.cc" "src/storage/CMakeFiles/htg_storage.dir/heap_table.cc.o" "gcc" "src/storage/CMakeFiles/htg_storage.dir/heap_table.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/htg_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/htg_storage.dir/page.cc.o.d"
  "/root/repo/src/storage/row_codec.cc" "src/storage/CMakeFiles/htg_storage.dir/row_codec.cc.o" "gcc" "src/storage/CMakeFiles/htg_storage.dir/row_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/htg_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/htg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
