# Empty compiler generated dependencies file for htg_storage.
# This may be replaced when dependencies are built.
