file(REMOVE_RECURSE
  "libhtg_udf.a"
)
