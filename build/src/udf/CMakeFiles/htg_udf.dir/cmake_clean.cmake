file(REMOVE_RECURSE
  "CMakeFiles/htg_udf.dir/builtin_aggregates.cc.o"
  "CMakeFiles/htg_udf.dir/builtin_aggregates.cc.o.d"
  "CMakeFiles/htg_udf.dir/builtins.cc.o"
  "CMakeFiles/htg_udf.dir/builtins.cc.o.d"
  "CMakeFiles/htg_udf.dir/registry.cc.o"
  "CMakeFiles/htg_udf.dir/registry.cc.o.d"
  "libhtg_udf.a"
  "libhtg_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
