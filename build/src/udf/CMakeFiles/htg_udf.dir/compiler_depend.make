# Empty compiler generated dependencies file for htg_udf.
# This may be replaced when dependencies are built.
