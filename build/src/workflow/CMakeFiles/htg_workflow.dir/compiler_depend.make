# Empty compiler generated dependencies file for htg_workflow.
# This may be replaced when dependencies are built.
