file(REMOVE_RECURSE
  "libhtg_workflow.a"
)
