file(REMOVE_RECURSE
  "CMakeFiles/htg_workflow.dir/loaders.cc.o"
  "CMakeFiles/htg_workflow.dir/loaders.cc.o.d"
  "CMakeFiles/htg_workflow.dir/provenance.cc.o"
  "CMakeFiles/htg_workflow.dir/provenance.cc.o.d"
  "CMakeFiles/htg_workflow.dir/schema.cc.o"
  "CMakeFiles/htg_workflow.dir/schema.cc.o.d"
  "libhtg_workflow.a"
  "libhtg_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
