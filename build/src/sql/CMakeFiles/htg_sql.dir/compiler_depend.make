# Empty compiler generated dependencies file for htg_sql.
# This may be replaced when dependencies are built.
