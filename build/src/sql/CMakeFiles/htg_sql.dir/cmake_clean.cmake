file(REMOVE_RECURSE
  "CMakeFiles/htg_sql.dir/ast.cc.o"
  "CMakeFiles/htg_sql.dir/ast.cc.o.d"
  "CMakeFiles/htg_sql.dir/binder.cc.o"
  "CMakeFiles/htg_sql.dir/binder.cc.o.d"
  "CMakeFiles/htg_sql.dir/engine.cc.o"
  "CMakeFiles/htg_sql.dir/engine.cc.o.d"
  "CMakeFiles/htg_sql.dir/lexer.cc.o"
  "CMakeFiles/htg_sql.dir/lexer.cc.o.d"
  "CMakeFiles/htg_sql.dir/parser.cc.o"
  "CMakeFiles/htg_sql.dir/parser.cc.o.d"
  "libhtg_sql.a"
  "libhtg_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
