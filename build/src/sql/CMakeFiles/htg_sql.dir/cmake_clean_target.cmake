file(REMOVE_RECURSE
  "libhtg_sql.a"
)
