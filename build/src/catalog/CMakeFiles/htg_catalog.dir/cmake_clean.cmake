file(REMOVE_RECURSE
  "CMakeFiles/htg_catalog.dir/database.cc.o"
  "CMakeFiles/htg_catalog.dir/database.cc.o.d"
  "libhtg_catalog.a"
  "libhtg_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
