# Empty compiler generated dependencies file for htg_catalog.
# This may be replaced when dependencies are built.
