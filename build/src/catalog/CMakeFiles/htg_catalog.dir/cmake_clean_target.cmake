file(REMOVE_RECURSE
  "libhtg_catalog.a"
)
