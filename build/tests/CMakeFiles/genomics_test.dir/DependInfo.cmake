
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/genomics_test.cc" "tests/CMakeFiles/genomics_test.dir/genomics_test.cc.o" "gcc" "tests/CMakeFiles/genomics_test.dir/genomics_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/htg_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/htg_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/htg_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/htg_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/htg_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/htg_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/htg_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/htg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/htg_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/htg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
