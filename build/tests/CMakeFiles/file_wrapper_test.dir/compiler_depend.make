# Empty compiler generated dependencies file for file_wrapper_test.
# This may be replaced when dependencies are built.
