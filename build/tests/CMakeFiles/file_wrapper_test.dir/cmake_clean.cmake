file(REMOVE_RECURSE
  "CMakeFiles/file_wrapper_test.dir/file_wrapper_test.cc.o"
  "CMakeFiles/file_wrapper_test.dir/file_wrapper_test.cc.o.d"
  "file_wrapper_test"
  "file_wrapper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_wrapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
