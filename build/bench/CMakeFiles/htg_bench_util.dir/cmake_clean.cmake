file(REMOVE_RECURSE
  "../lib/libhtg_bench_util.a"
  "../lib/libhtg_bench_util.pdb"
  "CMakeFiles/htg_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/htg_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htg_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
