file(REMOVE_RECURSE
  "../lib/libhtg_bench_util.a"
)
