# Empty compiler generated dependencies file for htg_bench_util.
# This may be replaced when dependencies are built.
