# Empty dependencies file for bench_ablation_aligner.
# This may be replaced when dependencies are built.
