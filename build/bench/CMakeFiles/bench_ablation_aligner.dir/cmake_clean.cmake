file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aligner.dir/bench_ablation_aligner.cc.o"
  "CMakeFiles/bench_ablation_aligner.dir/bench_ablation_aligner.cc.o.d"
  "bench_ablation_aligner"
  "bench_ablation_aligner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aligner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
