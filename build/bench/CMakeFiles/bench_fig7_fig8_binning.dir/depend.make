# Empty dependencies file for bench_fig7_fig8_binning.
# This may be replaced when dependencies are built.
