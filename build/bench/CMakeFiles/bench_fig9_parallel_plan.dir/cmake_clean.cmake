file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_parallel_plan.dir/bench_fig9_parallel_plan.cc.o"
  "CMakeFiles/bench_fig9_parallel_plan.dir/bench_fig9_parallel_plan.cc.o.d"
  "bench_fig9_parallel_plan"
  "bench_fig9_parallel_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_parallel_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
