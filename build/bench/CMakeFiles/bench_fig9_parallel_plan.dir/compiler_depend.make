# Empty compiler generated dependencies file for bench_fig9_parallel_plan.
# This may be replaced when dependencies are built.
