file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_file_wrapping.dir/bench_sec52_file_wrapping.cc.o"
  "CMakeFiles/bench_sec52_file_wrapping.dir/bench_sec52_file_wrapping.cc.o.d"
  "bench_sec52_file_wrapping"
  "bench_sec52_file_wrapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_file_wrapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
