# Empty dependencies file for bench_sec52_file_wrapping.
# This may be replaced when dependencies are built.
