# Empty dependencies file for bench_fig10_consensus.
# This may be replaced when dependencies are built.
