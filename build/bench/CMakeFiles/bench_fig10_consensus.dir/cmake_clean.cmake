file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_consensus.dir/bench_fig10_consensus.cc.o"
  "CMakeFiles/bench_fig10_consensus.dir/bench_fig10_consensus.cc.o.d"
  "bench_fig10_consensus"
  "bench_fig10_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
