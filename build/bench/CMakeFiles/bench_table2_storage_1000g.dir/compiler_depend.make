# Empty compiler generated dependencies file for bench_table2_storage_1000g.
# This may be replaced when dependencies are built.
