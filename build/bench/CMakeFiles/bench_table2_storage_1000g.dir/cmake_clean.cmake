file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_storage_1000g.dir/bench_table2_storage_1000g.cc.o"
  "CMakeFiles/bench_table2_storage_1000g.dir/bench_table2_storage_1000g.cc.o.d"
  "bench_table2_storage_1000g"
  "bench_table2_storage_1000g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_storage_1000g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
