# Empty dependencies file for bench_table1_storage_dge.
# This may be replaced when dependencies are built.
