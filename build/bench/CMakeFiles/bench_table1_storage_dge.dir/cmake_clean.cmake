file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_storage_dge.dir/bench_table1_storage_dge.cc.o"
  "CMakeFiles/bench_table1_storage_dge.dir/bench_table1_storage_dge.cc.o.d"
  "bench_table1_storage_dge"
  "bench_table1_storage_dge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_storage_dge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
