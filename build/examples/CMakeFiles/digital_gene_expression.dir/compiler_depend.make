# Empty compiler generated dependencies file for digital_gene_expression.
# This may be replaced when dependencies are built.
