file(REMOVE_RECURSE
  "CMakeFiles/digital_gene_expression.dir/digital_gene_expression.cpp.o"
  "CMakeFiles/digital_gene_expression.dir/digital_gene_expression.cpp.o.d"
  "digital_gene_expression"
  "digital_gene_expression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digital_gene_expression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
