file(REMOVE_RECURSE
  "CMakeFiles/thousand_genomes.dir/thousand_genomes.cpp.o"
  "CMakeFiles/thousand_genomes.dir/thousand_genomes.cpp.o.d"
  "thousand_genomes"
  "thousand_genomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thousand_genomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
