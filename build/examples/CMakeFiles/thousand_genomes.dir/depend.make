# Empty dependencies file for thousand_genomes.
# This may be replaced when dependencies are built.
