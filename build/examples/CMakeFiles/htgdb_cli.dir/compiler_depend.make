# Empty compiler generated dependencies file for htgdb_cli.
# This may be replaced when dependencies are built.
