file(REMOVE_RECURSE
  "CMakeFiles/htgdb_cli.dir/htgdb_cli.cpp.o"
  "CMakeFiles/htgdb_cli.dir/htgdb_cli.cpp.o.d"
  "htgdb_cli"
  "htgdb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htgdb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
