#!/usr/bin/env python3
"""htg_lint: project-specific invariants the compiler can't check.

Rules (ids usable in NOLINT suppressions):

  raw-io            All file I/O in src/ goes through the storage::Vfs seam
                    (src/storage/vfs.cc is the one POSIX boundary). Raw
                    fopen/::open/::pwrite/::fsync/fstream anywhere else in
                    engine code bypasses fault injection and crash-safety
                    accounting.
  server-raw-socket All socket syscalls (::socket/::recv/::send/... and
                    the <sys/socket.h> family of includes) live in
                    src/server/net_socket.{h,cc}, the network seam that
                    gives the server typed errors, EINTR retries, and
                    MSG_NOSIGNAL. Everything else talks through
                    server::Socket / ListenSocket / Client.
  naked-new         No naked new/delete in src/: ownership must be visible
                    at the allocation site (make_unique, unique_ptr(new ...),
                    .reset(new ...), or the intentional-leak `*new` static
                    singleton idiom). Page/tree node internals in
                    src/storage/bplus_tree.cc are exempt.
  statuscode-switch A switch over htg::StatusCode must be exhaustive: no
                    `default:` label that would silently swallow newly added
                    codes (the compiler's -Wswitch only helps without one).
  uda-merge         Every AggregateInstance subclass must implement Merge()
                    -- the paper's precondition (Sec. 5.3) for running the
                    aggregate in a parallel partial/final plan.
  include-cc        Never #include a .cc file.
  pragma-once       Every header starts with #pragma once.
  void-status       No (void)/static_cast<void> discard of a call result in
                    src/ -- dropping a Status/Result that way is invisible;
                    use HTG_IGNORE_STATUS(expr), which logs in debug builds.
  status-ok-drop    No `expr.ok();` in statement position: calling .ok()
                    and ignoring the bool launders [[nodiscard]] away.
  exec-raw-timing   No raw std::chrono clock reads (steady_clock /
                    high_resolution_clock / system_clock, or clock_gettime)
                    in src/exec: operator timing must go through
                    htg::Stopwatch / the OperatorStats plumbing so EXPLAIN
                    ANALYZE accounting stays in one place.
  env-doc           Every HTG_* environment variable referenced from src/
                    or bench/ must appear in docs/OPERATIONS.md -- one
                    table holds every runtime knob, so a knob that exists
                    only in code is undocumented by definition.
  sync-raw-mutex    No raw std::mutex / std::shared_mutex / lock_guard /
                    unique_lock / shared_lock / scoped_lock /
                    condition_variable outside
                    src/common/synchronization.{h,cc}: the annotated
                    Mutex/SharedMutex/CondVar wrappers there carry the
                    Clang thread-safety attributes and feed the
                    HTG_DEADLOCK_DETECT lock-order detector; a raw
                    primitive is invisible to both.
  sync-unguarded-field
                    A class that declares a Mutex/SharedMutex member must
                    annotate at least one sibling field with
                    HTG_GUARDED_BY -- a lock that guards nothing the
                    analysis can see is either dead or protecting data it
                    is not tied to. NOLINT the mutex declaration with a
                    reason if the lock's protectorate genuinely cannot be
                    expressed as fields (e.g. it orders external I/O).
  sync-locked-suffix
                    A method named *Locked() must carry HTG_REQUIRES(...)
                    on its declaration: the suffix is the repo convention
                    for "caller already holds the lock", and the
                    annotation is what lets Clang enforce it.
  exec-batch-rowloop
                    No per-row `Next()` pulls inside src/exec batch
                    kernels (functions named *Batch* or classes deriving
                    BatchIterator): a row loop there silently degrades the
                    vectorized path back to tuple-at-a-time. Pull whole
                    batches with NextBatch(). Row-at-a-time iteration is
                    sanctioned only at the UDF/TVF apply seam
                    (src/exec/apply_ops.cc is exempt wholesale).
  exec-untracked-reserve
                    In the materializing operator files (sort_ops,
                    aggregate_ops, join_ops, basic_ops under src/exec), a
                    row buffer (`std::vector<Row>`) reserved or resized
                    to a non-literal size must be in scope of the
                    memory-governance plumbing: the enclosing function or
                    class has to hold a charge (MemoryCharge /
                    MemoryContext) so the bytes count against the query
                    budget and can trigger spilling. Fixed-size literal
                    reservations and arity-sized scratch are exempt.

Suppression: append `// NOLINT(htg-<rule>)` to the offending line (or a
bare NOLINT comment, honoured for compatibility with clang-tidy). Lint
fixtures under tests/lint/ are excluded from the tree scan and exercised by
`--selftest`, which asserts every `// expect-lint: <rule>` annotation fires
and nothing else does.

Usage:
  htg_lint.py [ROOT]              lint ROOT/{src,bench,tests}  (default: cwd)
  htg_lint.py --rule NAME [ROOT]  run only the named rule (repeatable)
  htg_lint.py --selftest [ROOT]   run the fixture self-test
  htg_lint.py --list-rules        print every rule with its one-line summary
"""

import os
import re
import sys

FIXTURE_DIR = os.path.join("tests", "lint")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [htg-{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving offsets and
    newlines so line numbers stay valid. NOLINT markers are handled by the
    caller before stripping."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c in "\"'":
                state = c
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # inside a string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == state:
                state = None
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def matching_brace(text, open_idx):
    """Index just past the brace matching text[open_idx] ('{'), or len."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# ---------------------------------------------------------------- rules ---

RAW_IO_RE = re.compile(
    r"\b(fopen|freopen|tmpfile)\s*\("
    r"|::\s*(open|openat|creat|pread|pwrite|fsync|fdatasync)\s*\("
    r"|\bstd::(i|o)?fstream\b"
)


def check_raw_io(path, text, rel):
    if rel.replace(os.sep, "/") == "src/storage/vfs.cc":
        return []
    return [
        Finding(path, line_of(text, m.start()), "raw-io",
                f"raw file I/O `{m.group(0).strip()}` bypasses the Vfs seam; "
                "use storage::Vfs (src/storage/vfs.h)")
        for m in RAW_IO_RE.finditer(text)
    ]


RAW_SOCKET_RE = re.compile(
    r"#include\s*<(sys/socket\.h|netinet/[\w./]+|arpa/inet\.h)>"
    r"|::\s*(socket|connect|bind|listen|accept4?|recv(from)?|send(to)?"
    r"|setsockopt|getsockopt|getsockname|shutdown)\s*\("
)
# The one sanctioned home of socket syscalls (the server's Vfs-style
# network seam).
SOCKET_SEAM = {"src/server/net_socket.cc", "src/server/net_socket.h"}


def check_server_raw_socket(path, text, rel):
    if rel.replace(os.sep, "/") in SOCKET_SEAM:
        return []
    return [
        Finding(path, line_of(text, m.start()), "server-raw-socket",
                f"raw socket call `{m.group(0).strip()}` bypasses the "
                "network seam; use server::Socket / ListenSocket "
                "(src/server/net_socket.h)")
        for m in RAW_SOCKET_RE.finditer(text)
    ]


NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (place)` is placement new
DELETE_RE = re.compile(r"\bdelete(\[\])?\s")
NAKED_NEW_EXEMPT = {"src/storage/bplus_tree.cc"}
OWNED_CONTEXT_RE = re.compile(
    r"(unique_ptr|shared_ptr|make_unique|make_shared|\.reset|->reset)"
    r"[^;{}]*$"
)


def check_naked_new(path, text, rel):
    if rel.replace(os.sep, "/") in NAKED_NEW_EXEMPT:
        return []
    findings = []
    for m in NEW_RE.finditer(text):
        # Statement context: everything since the last ; { or } before `new`.
        stmt_start = max(
            text.rfind(";", 0, m.start()),
            text.rfind("{", 0, m.start()),
            text.rfind("}", 0, m.start()),
        )
        stmt = text[stmt_start + 1: m.start()]
        # `*new T(...)` is the sanctioned intentional-leak singleton idiom.
        if stmt.rstrip().endswith("*"):
            continue
        if OWNED_CONTEXT_RE.search(stmt):
            continue
        findings.append(Finding(
            path, line_of(text, m.start()), "naked-new",
            "naked `new` without a visible owner; use make_unique / "
            "unique_ptr(new ...) or the `*new` leaky-singleton idiom"))
    for m in DELETE_RE.finditer(text):
        before = text[max(0, m.start() - 24): m.start()]
        if re.search(r"=\s*$", before):  # `= delete;` deleted function
            continue
        if re.search(r"operator\s*$", before):
            continue
        findings.append(Finding(
            path, line_of(text, m.start()), "naked-new",
            "naked `delete`; prefer owning smart pointers"))
    return findings


SWITCH_RE = re.compile(r"\bswitch\s*\(")


def check_statuscode_switch(path, text, rel):
    findings = []
    for m in SWITCH_RE.finditer(text):
        cond_start = m.end() - 1
        depth, i = 0, cond_start
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        cond = text[cond_start: i + 1]
        if "StatusCode" not in cond and not re.search(
                r"(\.|->)\s*code\s*\(\s*\)", cond):
            continue
        body_open = text.find("{", i)
        if body_open < 0:
            continue
        body_end = matching_brace(text, body_open)
        dm = re.search(r"\bdefault\s*:", text[body_open:body_end])
        if dm:
            findings.append(Finding(
                path, line_of(text, body_open + dm.start()),
                "statuscode-switch",
                "`default:` in a switch over StatusCode silently swallows "
                "newly added codes; enumerate every case instead"))
    return findings


UDA_CLASS_RE = re.compile(
    r"\bclass\s+(\w+)\s*(?:final\s*)?:\s*public\s+"
    r"(?:::)?(?:htg::)?(?:udf::)?AggregateInstance\b"
)


def check_uda_merge(path, text, rel):
    findings = []
    for m in UDA_CLASS_RE.finditer(text):
        body_open = text.find("{", m.end())
        if body_open < 0:
            continue
        body = text[body_open:matching_brace(text, body_open)]
        if not re.search(r"\bMerge\s*\(", body):
            findings.append(Finding(
                path, line_of(text, m.start()), "uda-merge",
                f"aggregate instance `{m.group(1)}` does not implement "
                "Merge(); parallel partial/final plans require it"))
    return findings


INCLUDE_CC_RE = re.compile(r'#\s*include\s+["<][^">]*\.cc[">]')


def check_include_cc(path, text, rel):
    return [
        Finding(path, line_of(text, m.start()), "include-cc",
                "#include of a .cc file; move shared code into a header")
        for m in INCLUDE_CC_RE.finditer(text)
    ]


def check_pragma_once(path, text, rel):
    if not path.endswith(".h"):
        return []
    head = "\n".join(text.splitlines()[:10])
    if "#pragma once" in head:
        return []
    return [Finding(path, 1, "pragma-once",
                    "header does not start with #pragma once")]


OK_STMT_RE = re.compile(r"\.ok\s*\(\s*\)\s*;")


def check_status_ok_drop(path, text, rel):
    """Flags `expr.ok();` in statement position: calling .ok() and ignoring
    the bool launders a [[nodiscard]] Status into silence. The PR-3 sweep
    found a dozen of these (dropped DeleteFile/Append/Register statuses)."""
    findings = []
    for m in OK_STMT_RE.finditer(text):
        # Walk back over the expression whose .ok() is being called:
        # balanced (...) / [...] groups and identifier/member chains.
        j = m.start()
        while j > 0:
            c = text[j - 1]
            if c in ")]":
                depth = 0
                while j > 0:
                    j -= 1
                    if text[j] in ")]":
                        depth += 1
                    elif text[j] in "([":
                        depth -= 1
                        if depth == 0:
                            break
            elif c.isalnum() or c in "_.:":
                j -= 1
            elif c == ">" and j >= 2 and text[j - 2] == "-":
                j -= 2
            else:
                break
        before = text[:j].rstrip()
        # Consumed results: assignment, return, negation, inside a larger
        # expression, comparison, or ternary.
        if before.endswith(("return", "co_return")):
            continue
        if before and before[-1] in "=!&|?:,<>(+-*/%":
            continue
        findings.append(Finding(
            path, line_of(text, m.start()), "status-ok-drop",
            "`expr.ok();` discards the error; propagate the Status or wrap "
            "the expression in HTG_IGNORE_STATUS(...)"))
    return findings


VOID_CAST_RE = re.compile(
    r"\(\s*void\s*\)\s*[\w:.>\-\[\]]+\s*\(|static_cast<\s*void\s*>\s*\([^)]*\(")


def check_void_status(path, text, rel):
    if rel.replace(os.sep, "/") == "src/common/status.h":
        return []  # home of HTG_IGNORE_STATUS itself
    return [
        Finding(path, line_of(text, m.start()), "void-status",
                "(void)-discard of a call result hides a possible dropped "
                "Status; use HTG_IGNORE_STATUS(expr) instead")
        for m in VOID_CAST_RE.finditer(text)
    ]


RAW_TIMING_RE = re.compile(
    r"\b(?:std\s*::\s*)?chrono\s*::\s*"
    r"(steady_clock|high_resolution_clock|system_clock)\b"
    r"|\b(steady_clock|high_resolution_clock|system_clock)\s*::\s*now\s*\("
    r"|\b(clock_gettime|gettimeofday)\s*\("
)


def check_exec_raw_timing(path, text, rel):
    # Only the executor is restricted; storage/common may read clocks (the
    # Stopwatch itself lives in src/common). Selftest fixtures arrive with a
    # bare filename, which must still trip the rule.
    norm = rel.replace(os.sep, "/")
    if "/" in norm and not norm.startswith("src/exec/"):
        return []
    return [
        Finding(path, line_of(text, m.start()), "exec-raw-timing",
                f"raw clock read `{m.group(0).strip()}` in src/exec; use "
                "htg::Stopwatch (src/common/stopwatch.h) so operator timing "
                "stays on the single sanctioned path into OperatorStats")
        for m in RAW_TIMING_RE.finditer(text)
    ]


ROW_NEXT_RE = re.compile(r"(?:->|\.)\s*Next\s*\(")
BATCH_FN_RE = re.compile(r"\b[\w:~]*Batch[\w:]*\s*\(")
BATCH_CLASS_RE = re.compile(
    r"\bclass\s+\w+\s*(?:final\s*)?:\s*(?:public\s+)?[\w:]*\bBatchIterator\b"
)
BATCH_ROWLOOP_EXEMPT = {"src/exec/apply_ops.cc"}


def _batch_kernel_bodies(text):
    """(start, end) offset ranges of batch-kernel code: bodies of functions
    whose name contains `Batch`, and bodies of classes deriving
    BatchIterator."""
    bodies = []
    for m in BATCH_FN_RE.finditer(text):
        # Find the close of the parameter list, then decide definition vs
        # call/declaration by what follows: qualifiers then `{` = definition.
        depth, i = 0, m.end() - 1
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(text):
            tail = text[j:]
            qm = re.match(r"\s*(const|override|final|noexcept)\b", tail)
            if qm:
                j += qm.end()
                continue
            break
        rest = text[j:].lstrip()
        if rest.startswith("{"):
            open_idx = text.index("{", j)
            bodies.append((open_idx, matching_brace(text, open_idx)))
    for m in BATCH_CLASS_RE.finditer(text):
        open_idx = text.find("{", m.end())
        if open_idx >= 0:
            bodies.append((open_idx, matching_brace(text, open_idx)))
    return bodies


def check_exec_batch_rowloop(path, text, rel):
    # Only the executor's batch kernels are restricted; the storage layer's
    # default NextBatch adapter legitimately loops Next(). apply_ops.cc is
    # the deliberate row seam (UDF/TVF/CROSS APPLY, paper Sec. 5.2) and is
    # exempt wholesale. Selftest fixtures arrive with a bare filename, which
    # must still trip the rule.
    norm = rel.replace(os.sep, "/")
    if "/" in norm and not norm.startswith("src/exec/"):
        return []
    if norm in BATCH_ROWLOOP_EXEMPT:
        return []
    bodies = _batch_kernel_bodies(text)
    seen = set()
    findings = []
    for m in ROW_NEXT_RE.finditer(text):
        if m.start() in seen:
            continue
        if any(lo <= m.start() < hi for lo, hi in bodies):
            seen.add(m.start())
            findings.append(Finding(
                path, line_of(text, m.start()), "exec-batch-rowloop",
                "per-row Next() inside a batch kernel degrades the "
                "vectorized path to tuple-at-a-time; pull whole batches "
                "with NextBatch() (row pulls are sanctioned only at the "
                "UDF/TVF apply seam, src/exec/apply_ops.cc)"))
    return findings


RESERVE_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*(reserve|resize)\s*\(")
# The operators that materialize data-proportional state; scan/filter/
# project files hold per-batch scratch only.
EXEC_RESERVE_FILES = {
    "src/exec/sort_ops.cc",
    "src/exec/aggregate_ops.cc",
    "src/exec/join_ops.cc",
    "src/exec/basic_ops.cc",
}
CHARGE_RE = re.compile(r"\b(charge_?|Charge|MemoryCharge|MemoryContext)\b")
ROW_VECTOR_DECL_RE = re.compile(
    r"\bstd::vector<\s*Row\s*>\s*[*&]?\s*(\w+)")


def _charge_scopes(text):
    """(start, end) offset ranges that put a reserve under memory
    governance when they mention a charge: `) ... {` bodies (functions and
    the control-flow blocks inside them) plus class/struct bodies (a
    MemoryCharge member governs every method)."""
    bodies = []
    for m in re.finditer(
            r"\)\s*(?:const\s*|override\s*|final\s*|noexcept\s*)*\{", text):
        open_idx = text.index("{", m.start())
        bodies.append((open_idx, matching_brace(text, open_idx)))
    for m in re.finditer(r"\b(?:class|struct)\s+\w+[^;{]*\{", text):
        open_idx = text.index("{", m.end() - 1)
        bodies.append((open_idx, matching_brace(text, open_idx)))
    return bodies


def check_exec_untracked_reserve(path, text, rel):
    """A row buffer (`std::vector<Row>`) reserved/resized to a non-literal
    size in a materializing operator file, with no memory charge in any
    enclosing function or class, grows with the data but is invisible to
    the query budget — it can neither trip the typed kResourceExhausted
    error nor trigger spilling. Arity-sized scratch (keys, argument
    vectors, partition writer arrays) is out of scope by construction.
    Selftest fixtures arrive with a bare filename, which must still trip
    the rule."""
    norm = rel.replace(os.sep, "/")
    if "/" in norm and norm not in EXEC_RESERVE_FILES:
        return []
    row_vectors = set(ROW_VECTOR_DECL_RE.findall(text))
    if not row_vectors:
        return []
    scopes = _charge_scopes(text)
    findings = []
    for m in RESERVE_RE.finditer(text):
        if m.group(1) not in row_vectors:
            continue
        # Extract the argument list; a pure integer literal is bounded
        # scratch, not data-proportional growth.
        depth, i = 0, text.index("(", m.end() - 1)
        start_arg = i + 1
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        arg = text[start_arg:i]
        if re.fullmatch(r"\s*\d+\s*", arg):
            continue
        enclosing = [b for b in scopes if b[0] <= m.start() < b[1]]
        if any(CHARGE_RE.search(text[lo:hi]) for lo, hi in enclosing):
            continue
        findings.append(Finding(
            path, line_of(text, m.start()), "exec-untracked-reserve",
            f"row buffer `{m.group(1)}.{m.group(2)}({arg.strip()})` with "
            "no memory charge in the enclosing function or class; account "
            "the bytes through MemoryCharge so the query budget (and "
            "spilling) sees them"))
    return findings


OPERATIONS_DOC = os.path.join("docs", "OPERATIONS.md")
# String literals naming an environment knob ("HTG_SCALE" etc). Project
# macros (HTG_RETURN_IF_ERROR, HTG_METRIC_*) are identifiers, not quoted,
# so they never match.
ENV_VAR_RE = re.compile(r'"(HTG_[A-Z0-9_]+)"')

# Set by main() so the checker can find docs/OPERATIONS.md; the cache
# avoids re-reading it for every file.
LINT_ROOT = os.getcwd()
_documented_env = None


def documented_env_vars():
    """HTG_* names mentioned anywhere in docs/OPERATIONS.md."""
    global _documented_env
    if _documented_env is None:
        try:
            with open(os.path.join(LINT_ROOT, OPERATIONS_DOC),
                      encoding="utf-8") as f:
                _documented_env = set(re.findall(r"HTG_[A-Z0-9_]+", f.read()))
        except OSError:
            _documented_env = set()
    return _documented_env


def check_env_doc(path, text, rel):
    documented = documented_env_vars()
    return [
        Finding(path, line_of(text, m.start()), "env-doc",
                f"runtime knob `{m.group(1)}` is not documented in "
                f"{OPERATIONS_DOC}; add it to the knob table there")
        for m in ENV_VAR_RE.finditer(text)
        if m.group(1) not in documented
    ]


# -------------------------------------------------------- sync rules ---

# The one sanctioned home of raw std:: synchronization primitives.
SYNC_FILES = {"src/common/synchronization.h",
              "src/common/synchronization.cc"}
RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|condition_variable(?:_any)?|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock)\b")


def check_sync_raw_mutex(path, text, rel):
    if rel.replace(os.sep, "/") in SYNC_FILES:
        return []
    return [
        Finding(path, line_of(text, m.start()), "sync-raw-mutex",
                f"raw `std::{m.group(1)}` outside "
                "src/common/synchronization.{h,cc}; use the annotated "
                "htg::Mutex/SharedMutex/CondVar wrappers so the Clang "
                "thread-safety analysis and the HTG_DEADLOCK_DETECT "
                "lock-order detector can see the acquisition")
        for m in RAW_SYNC_RE.finditer(text)
    ]


# A by-value Mutex/SharedMutex member (pointer and reference members are
# someone else's lock). Brace-init carries the detector name.
MUTEX_MEMBER_RE = re.compile(
    r"\b(?:mutable\s+)?(?:htg\s*::\s*)?(Mutex|SharedMutex)\s+(\w+)\s*"
    r"(?:\{[^{}]*\})?\s*;")
CLASS_BODY_RE = re.compile(r"\b(?:class|struct)\s+(\w+)[^;{()]*\{")


def check_sync_unguarded_field(path, text, rel):
    if rel.replace(os.sep, "/") in SYNC_FILES:
        return []
    findings = []
    for cm in CLASS_BODY_RE.finditer(text):
        open_idx = text.index("{", cm.end() - 1)
        body = text[open_idx:matching_brace(text, open_idx)]
        if "HTG_GUARDED_BY" in body or "HTG_PT_GUARDED_BY" in body:
            continue
        for mm in MUTEX_MEMBER_RE.finditer(body):
            findings.append(Finding(
                path, line_of(text, open_idx + mm.start()),
                "sync-unguarded-field",
                f"`{cm.group(1)}` declares {mm.group(1)} "
                f"`{mm.group(2)}` but annotates no field with "
                "HTG_GUARDED_BY; tie the protected data to its lock (or "
                "NOLINT this line with a reason if the lock guards "
                "something fields cannot express)"))
    return findings


LOCKED_NAME_RE = re.compile(r"\b(\w+Locked)\s*\(")
LOCKED_PREFIX_KEYWORDS = {"return", "co_return", "co_await", "throw",
                          "else", "do", "case", "goto", "new", "delete"}


def check_sync_locked_suffix(path, text, rel):
    """Flags *Locked() declarations missing HTG_REQUIRES(...). Call sites
    are skipped: member/qualified calls by the character before the name,
    unqualified calls by statement context (no declaration has an empty or
    expression-shaped prefix)."""
    if rel.replace(os.sep, "/") in SYNC_FILES:
        return []
    findings = []
    for m in LOCKED_NAME_RE.finditer(text):
        k = m.start() - 1
        if k >= 0 and text[k] in ":.>":
            continue  # Foo::BarLocked / obj.BarLocked / ptr->BarLocked
        stmt_start = max(text.rfind(";", 0, m.start()),
                         text.rfind("{", 0, m.start()),
                         text.rfind("}", 0, m.start()))
        prefix = text[stmt_start + 1:m.start()].strip()
        if not prefix:
            continue  # bare call in statement position
        if prefix[-1] in "(,=!|?+-/%<)":
            continue  # argument, condition, or operand of an expression
        last_word = re.search(r"\w+$", prefix)
        if last_word and last_word.group(0) in LOCKED_PREFIX_KEYWORDS:
            continue
        # Declaration: scan past the parameter list, then the trailer up
        # to `;` (declaration) or `{` (inline definition) must hold a
        # lock annotation.
        depth, i = 0, text.index("(", m.end() - 1)
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(text) and text[j] not in ";{":
            j += 1
        trailer = text[i + 1:j]
        if ("HTG_REQUIRES" in trailer
                or "HTG_ASSERT_CAPABILITY" in trailer
                or "HTG_NO_THREAD_SAFETY_ANALYSIS" in trailer):
            continue
        findings.append(Finding(
            path, line_of(text, m.start()), "sync-locked-suffix",
            f"`{m.group(1)}()` is declared without HTG_REQUIRES(...); "
            "the *Locked suffix promises the caller already holds a "
            "lock -- annotate the declaration so Clang enforces it"))
    return findings


# rule id -> (checker, directory scopes it applies to, wants_raw_text).
# include-cc must see raw text: comment/string stripping blanks the quoted
# include path it matches on.
RULES = {
    "raw-io": (check_raw_io, ("src",), False),
    "server-raw-socket":
        (check_server_raw_socket, ("src", "bench", "tests"), False),
    "naked-new": (check_naked_new, ("src",), False),
    "statuscode-switch":
        (check_statuscode_switch, ("src", "bench", "tests"), False),
    "uda-merge": (check_uda_merge, ("src", "bench", "tests"), False),
    "include-cc": (check_include_cc, ("src", "bench", "tests"), True),
    "pragma-once": (check_pragma_once, ("src", "bench", "tests"), False),
    "void-status": (check_void_status, ("src",), False),
    "status-ok-drop":
        (check_status_ok_drop, ("src", "bench", "tests"), False),
    "exec-raw-timing": (check_exec_raw_timing, ("src",), False),
    "exec-batch-rowloop": (check_exec_batch_rowloop, ("src",), False),
    "exec-untracked-reserve":
        (check_exec_untracked_reserve, ("src",), False),
    # env-doc matches quoted knob names, so it needs unstripped text.
    "env-doc": (check_env_doc, ("src", "bench"), True),
    "sync-raw-mutex": (check_sync_raw_mutex, ("src",), False),
    "sync-unguarded-field": (check_sync_unguarded_field, ("src",), False),
    "sync-locked-suffix": (check_sync_locked_suffix, ("src",), False),
}

# One-line summaries for --list-rules. The table in docs/OPERATIONS.md is
# generated from this output; --selftest asserts every rule id appears
# there so the two cannot drift apart.
RULE_DESCRIPTIONS = {
    "raw-io": "all file I/O goes through the storage::Vfs seam",
    "server-raw-socket": "raw socket syscalls live only in "
                         "src/server/net_socket.{h,cc}",
    "naked-new": "no naked new/delete; ownership visible at the "
                 "allocation site",
    "statuscode-switch": "no `default:` in a switch over StatusCode",
    "uda-merge": "every AggregateInstance subclass implements Merge()",
    "include-cc": "never #include a .cc file",
    "pragma-once": "every header starts with #pragma once",
    "void-status": "no (void)-discard of a call result; use "
                   "HTG_IGNORE_STATUS",
    "status-ok-drop": "no `expr.ok();` in statement position",
    "exec-raw-timing": "operator timing uses htg::Stopwatch, not raw "
                       "clock reads",
    "exec-batch-rowloop": "no per-row Next() pulls inside src/exec batch "
                          "kernels",
    "exec-untracked-reserve": "data-proportional row buffers hold a "
                              "MemoryCharge",
    "env-doc": "every HTG_* env knob is documented in docs/OPERATIONS.md",
    "sync-raw-mutex": "raw std:: sync primitives live only in "
                      "src/common/synchronization.{h,cc}",
    "sync-unguarded-field": "a Mutex member needs a sibling "
                            "HTG_GUARDED_BY field",
    "sync-locked-suffix": "*Locked() declarations carry HTG_REQUIRES(...)",
}


def list_rules():
    width = max(len(rule) for rule in RULES) + len("htg-")
    for rule in RULES:
        print(f"htg-{rule}".ljust(width + 2) + RULE_DESCRIPTIONS[rule])
    return 0


def nolint_lines(raw_text):
    """Line numbers carrying a NOLINT marker -> set of suppressed rules
    (empty set = suppress everything on that line)."""
    suppressed = {}
    for i, line in enumerate(raw_text.splitlines(), start=1):
        m = re.search(r"NOLINT(?:\(([^)]*)\))?", line)
        if not m:
            continue
        rules = set()
        if m.group(1):
            for item in m.group(1).split(","):
                item = item.strip()
                if item.startswith("htg-"):
                    rules.add(item[len("htg-"):])
                else:
                    rules.add(item)
        suppressed[i] = rules
    return suppressed


def lint_file(path, rel, rule_ids=None, all_scopes=False):
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    suppressed = nolint_lines(raw)
    text = strip_comments_and_strings(raw)
    scope = rel.replace(os.sep, "/").split("/", 1)[0]
    findings = []
    for rule, (checker, scopes, wants_raw) in RULES.items():
        if rule_ids is not None and rule not in rule_ids:
            continue
        if not all_scopes and scope not in scopes:
            continue
        for finding in checker(path, raw if wants_raw else text, rel):
            rules = suppressed.get(finding.line)
            if rules is not None and (not rules or finding.rule in rules
                                      or "htg-" + finding.rule in rules):
                continue
            findings.append(finding)
    return findings


def tree_files(root):
    for top in ("src", "bench", "tests"):
        base = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root)
            if rel_dir.replace(os.sep, "/").startswith(
                    FIXTURE_DIR.replace(os.sep, "/")):
                continue
            for name in sorted(filenames):
                if name.endswith((".cc", ".h")):
                    full = os.path.join(dirpath, name)
                    yield full, os.path.relpath(full, root)


def run_lint(root, rule_ids=None):
    findings = []
    count = 0
    for path, rel in tree_files(root):
        count += 1
        findings.extend(lint_file(path, rel, rule_ids=rule_ids))
    for f in findings:
        print(f)
    which = f" [{', '.join(sorted(rule_ids))}]" if rule_ids else ""
    print(f"htg_lint{which}: {count} files scanned, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([\w-]+)")


def run_selftest(root):
    """Every fixture declares the rules it must trip via `// expect-lint`;
    a fixture with no annotations must stay clean. Rules fire across all
    scopes here so fixtures can live in one directory."""
    fixture_dir = os.path.join(root, FIXTURE_DIR)
    fixtures = sorted(
        f for f in os.listdir(fixture_dir) if f.endswith((".cc", ".h")))
    if not fixtures:
        print(f"htg_lint --selftest: no fixtures in {fixture_dir}")
        return 1
    failures = []
    all_expected = set()
    for name in fixtures:
        path = os.path.join(fixture_dir, name)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        expected = set(EXPECT_RE.findall(raw))
        all_expected |= expected
        fired = {f.rule for f in lint_file(path, name, all_scopes=True)}
        missing = expected - fired
        unexpected = fired - expected
        if missing:
            failures.append(f"{name}: expected rule(s) did not fire: "
                            f"{', '.join(sorted(missing))}")
        if unexpected:
            failures.append(f"{name}: unexpected rule(s) fired: "
                            f"{', '.join(sorted(unexpected))}")
    # Every rule must be exercised by at least one fixture: a rule with no
    # fixture can regress silently.
    unfixtured = sorted(set(RULES) - all_expected)
    if unfixtured:
        failures.append("rule(s) with no fixture declaring them via "
                        f"expect-lint: {', '.join(unfixtured)}")
    # And described: --list-rules must cover the whole rule set.
    undescribed = sorted(set(RULES) - set(RULE_DESCRIPTIONS))
    if undescribed:
        failures.append("rule(s) missing from RULE_DESCRIPTIONS: "
                        f"{', '.join(undescribed)}")
    # The OPERATIONS.md rule table is hand-maintained from --list-rules;
    # assert it names every rule so docs and tool cannot drift.
    try:
        with open(os.path.join(root, OPERATIONS_DOC),
                  encoding="utf-8") as f:
            ops = f.read()
    except OSError:
        ops = ""
    undocumented = sorted(r for r in RULES if f"htg-{r}" not in ops)
    if undocumented:
        failures.append(f"rule(s) not listed in {OPERATIONS_DOC}: "
                        f"{', '.join(undocumented)}")
    for failure in failures:
        print("htg_lint --selftest FAIL:", failure)
    print(f"htg_lint --selftest: {len(fixtures)} fixtures, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv):
    global LINT_ROOT
    selftest = False
    rule_ids = None
    positional = []
    it = iter(argv[1:])
    for arg in it:
        if arg == "--selftest":
            selftest = True
        elif arg == "--list-rules":
            return list_rules()
        elif arg == "--rule":
            name = next(it, None)
            if name is None or name not in RULES:
                known = ", ".join(sorted(RULES))
                print(f"htg_lint: --rule needs one of: {known}")
                return 2
            rule_ids = (rule_ids or set()) | {name}
        else:
            positional.append(arg)
    root = positional[0] if positional else os.getcwd()
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"htg_lint: {root} does not look like the repo root")
        return 2
    LINT_ROOT = root
    return run_selftest(root) if selftest else run_lint(root, rule_ids)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
