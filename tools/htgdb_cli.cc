// htgdb-cli: scripted wire-protocol client for htgdb-server. Reads one
// command per line from stdin and talks to a running server over
// loopback, which is exactly what the CI server-smoke job needs: drive a
// session (load -> query -> prepared statement -> close) from a shell
// heredoc and exit nonzero if anything failed.
//
//   htgdb-cli --port N
//
// Lines are SQL statements, except backslash commands:
//   \prepare <sql>    prepare, prints "prepared <id>"
//   \execute <id>     execute a prepared statement
//   \close <id>       close a prepared statement
//   \quit             polite goodbye (EOF does the same)
//
// BEGIN / COMMIT / ABORT lines (case-insensitive, optional trailing ';')
// are intercepted and sent as their dedicated wire frames rather than
// SQL: the statements between BEGIN and COMMIT run as one
// snapshot-isolation transaction (see docs/CONCURRENCY.md).

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "server/client.h"

namespace {

// Matches a bare transaction keyword: case-insensitive, surrounding
// whitespace and one trailing ';' tolerated ("begin", "COMMIT;", ...).
bool IsKeywordLine(const std::string& line, const char* keyword) {
  size_t begin = 0;
  size_t end = line.size();
  while (begin < end && isspace(static_cast<unsigned char>(line[begin]))) {
    ++begin;
  }
  while (end > begin && isspace(static_cast<unsigned char>(line[end - 1]))) {
    --end;
  }
  if (end > begin && line[end - 1] == ';') --end;
  while (end > begin && isspace(static_cast<unsigned char>(line[end - 1]))) {
    --end;
  }
  const size_t len = strlen(keyword);
  if (end - begin != len) return false;
  for (size_t i = 0; i < len; ++i) {
    if (toupper(static_cast<unsigned char>(line[begin + i])) != keyword[i]) {
      return false;
    }
  }
  return true;
}

void PrintResult(const htg::server::ClientResult& result) {
  if (result.schema.num_columns() > 0) {
    for (int c = 0; c < result.schema.num_columns(); ++c) {
      printf("%s%s", c > 0 ? "\t" : "", result.schema.column(c).name.c_str());
    }
    printf("\n");
    for (const htg::Row& row : result.rows) {
      for (size_t c = 0; c < row.size(); ++c) {
        printf("%s%s", c > 0 ? "\t" : "", row[c].ToString().c_str());
      }
      printf("\n");
    }
    printf("(%zu rows)\n", result.rows.size());
  } else if (!result.message.empty()) {
    printf("%s\n", result.message.c_str());
  } else {
    printf("(%llu rows affected)\n",
           static_cast<unsigned long long>(result.rows_affected));
  }
}

}  // namespace

int main(int argc, char** argv) {
  long port = 0;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::strtol(argv[++i], nullptr, 10);
    }
  }
  if (port <= 0) {
    if (const char* env = std::getenv("HTG_SERVER_PORT")) {
      port = std::strtol(env, nullptr, 10);
    }
  }
  if (port <= 0 || port > 65535) {
    fprintf(stderr, "usage: htgdb-cli --port N  (or HTG_SERVER_PORT)\n");
    return 2;
  }

  auto connected =
      htg::server::Client::Connect(static_cast<uint16_t>(port), "htgdb-cli");
  if (!connected.ok()) {
    fprintf(stderr, "htgdb-cli: %s\n", connected.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<htg::server::Client> client = std::move(*connected);
  fprintf(stderr, "connected: session %llu\n",
          static_cast<unsigned long long>(client->session_id()));

  int failures = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    // Trim trailing CR (heredocs written on checkouts with CRLF).
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    if (line == "\\quit") break;
    const bool is_begin = IsKeywordLine(line, "BEGIN");
    const bool is_commit = IsKeywordLine(line, "COMMIT");
    const bool is_abort = IsKeywordLine(line, "ABORT");
    if (is_begin || is_commit || is_abort) {
      const htg::Status s = is_begin    ? client->Begin()
                            : is_commit ? client->Commit()
                                        : client->Abort();
      if (!s.ok()) {
        fprintf(stderr, "error: %s\n", s.ToString().c_str());
        ++failures;
        continue;
      }
      printf("%s\n", is_begin ? "begin" : is_commit ? "commit" : "abort");
      continue;
    }
    if (line.rfind("\\prepare ", 0) == 0) {
      auto prepared = client->Prepare(line.substr(9));
      if (!prepared.ok()) {
        fprintf(stderr, "error: %s\n", prepared.status().ToString().c_str());
        ++failures;
        continue;
      }
      printf("prepared %llu\n", static_cast<unsigned long long>(*prepared));
      continue;
    }
    if (line.rfind("\\execute ", 0) == 0) {
      const uint64_t id = std::strtoull(line.c_str() + 9, nullptr, 10);
      auto result = client->Execute(id);
      if (!result.ok()) {
        fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
        ++failures;
        continue;
      }
      PrintResult(*result);
      continue;
    }
    if (line.rfind("\\close ", 0) == 0) {
      const uint64_t id = std::strtoull(line.c_str() + 7, nullptr, 10);
      const htg::Status closed = client->CloseStatement(id);
      if (!closed.ok()) {
        fprintf(stderr, "error: %s\n", closed.ToString().c_str());
        ++failures;
        continue;
      }
      printf("closed %llu\n", static_cast<unsigned long long>(id));
      continue;
    }
    auto result = client->Query(line);
    if (!result.ok()) {
      fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      ++failures;
      continue;
    }
    PrintResult(*result);
  }
  client->Goodbye();
  if (failures > 0) {
    fprintf(stderr, "htgdb-cli: %d statement(s) failed\n", failures);
    return 1;
  }
  return 0;
}
