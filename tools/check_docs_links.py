#!/usr/bin/env python3
"""Relative-link checker for the repo's markdown docs.

Walks every *.md file under the repo root and verifies that each
relative markdown link target exists on disk. External links
(http/https/mailto) and pure in-page anchors (#...) are skipped;
a fragment on a relative link (FILE.md#section) is stripped before
the existence check — anchor validity is out of scope.

Exit status: 0 if every link resolves, 1 otherwise (one line per
broken link, `file:line: target`).

Usage: check_docs_links.py [root]
"""

import os
import re
import sys

# Inline links [text](target). Deliberately simple: no reference-style
# links or angle-bracket autolinks are used in this repo's docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_DIRS = {".git", "build", "third_party", "node_modules"}
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        )
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as f:
        in_fence = False
        for lineno, line in enumerate(f, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                if target.startswith("/"):
                    resolved = os.path.join(root, target.lstrip("/"))
                else:
                    resolved = os.path.join(os.path.dirname(path), target)
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, root)
                    broken.append(f"{rel}:{lineno}: {match.group(1)}")
    return broken


def main(argv):
    root = os.path.abspath(argv[1] if len(argv) > 1 else ".")
    broken = []
    checked = 0
    for path in markdown_files(root):
        checked += 1
        broken.extend(check_file(path, root))
    for line in broken:
        print(line)
    print(f"check_docs_links: {checked} markdown files, "
          f"{len(broken)} broken links", file=sys.stderr)
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
