#!/usr/bin/env python3
"""Compare two bench JSON outputs (files or directories of BENCH_*.json).

Usage:
    bench_compare.py BASELINE CURRENT [--threshold 1.5] [--schema-version 1]
                     [--strict]

BASELINE and CURRENT are either single BENCH_<name>.json files or
directories containing them (e.g. bench/baselines/ vs a fresh run).
Timing results compare by median, scalar results by value; a result
regresses when current > baseline * threshold. Exit status 1 on any
regression, so CI can gate on it.

By default results present on only one side are reported but are not
failures (benches gain and lose measurements across commits); mismatched
configs are flagged as a warning since the numbers may not be
comparable. Under --strict, any added, removed, or missing bench or
result is a failure too — the mode CI uses against checked-in baselines,
where a silently dropped measurement would otherwise disable its gate.

A baseline report may additionally carry an "assertions" list; each
assertion is checked against the CURRENT run's metrics (not the
baseline's), so shape invariants survive baseline refreshes. Supported
kinds:

    {"kind": "monotone", "results": ["query1_dop1", ..., "query1_dop8"],
     "direction": "non-increasing", "tolerance": 1.10}

asserts adjacent-pair ordering over the named results in listed order:
each next median must be <= previous * tolerance ("non-decreasing"
flips the comparison). A listed result missing from the current run is
a failure — an absent point would otherwise vacuously pass the gate.
This is how CI pins the fig. 9 DOP sweep: query1 medians must not climb
as DOP grows, i.e. parallelism must actually pay.
"""

import argparse
import json
import os
import sys

SCHEMA_VERSION = 1


def load_reports(path):
    """Returns {bench_name: report_dict} from a file or directory."""
    paths = []
    if os.path.isdir(path):
        for name in sorted(os.listdir(path)):
            if name.startswith("BENCH_") and name.endswith(".json"):
                paths.append(os.path.join(path, name))
    else:
        paths.append(path)
    if not paths:
        sys.exit(f"error: no BENCH_*.json found under {path}")
    reports = {}
    for p in paths:
        with open(p, encoding="utf-8") as f:
            report = json.load(f)
        for key in ("schema_version", "bench", "results"):
            if key not in report:
                sys.exit(f"error: {p}: missing key {key!r}")
        reports[report["bench"]] = report
    return reports


def result_metric(result):
    """The comparable scalar of one result entry, or None."""
    if "value" in result:
        return float(result["value"])
    if "median" in result:
        return float(result["median"])
    return None


def check_assertions(bench, base, cur, failures, warnings):
    """Evaluates the baseline's "assertions" list against the current run's
    metrics. Unknown kinds warn rather than fail so older tools keep
    working against newer baselines."""
    checked = 0
    cur_results = {r["name"]: r for r in cur["results"]}
    for assertion in base.get("assertions", []):
        kind = assertion.get("kind")
        if kind != "monotone":
            warnings.append(
                f"{bench}: unknown assertion kind {kind!r} skipped")
            continue
        names = assertion.get("results", [])
        direction = assertion.get("direction", "non-increasing")
        tolerance = float(assertion.get("tolerance", 1.0))
        if direction not in ("non-increasing", "non-decreasing"):
            failures.append(
                f"{bench}: monotone assertion has bad direction "
                f"{direction!r}")
            continue
        if len(names) < 2 or tolerance <= 0:
            failures.append(
                f"{bench}: monotone assertion needs >= 2 results and a "
                "positive tolerance")
            continue
        values = []
        missing = False
        for name in names:
            result = cur_results.get(name)
            value = result_metric(result) if result is not None else None
            if value is None:
                failures.append(
                    f"{bench}/{name}: named by monotone assertion but "
                    "missing from current run")
                missing = True
                continue
            values.append((name, value))
        if missing:
            continue
        checked += 1
        for (prev_name, prev), (name, value) in zip(values, values[1:]):
            ok = (value <= prev * tolerance if direction == "non-increasing"
                  else value * tolerance >= prev)
            line = (f"{bench}: monotone[{direction}] {prev_name} -> {name}: "
                    f"{prev:.6g} -> {value:.6g} (tolerance {tolerance:.2f}x)")
            if ok:
                print(f"  ok {line}")
            else:
                failures.append(f"MONOTONICITY {line} violated")
    return checked


def compare(baseline, current, threshold, schema_version, strict=False):
    failures = []
    warnings = []
    compared = 0
    # One-sided results: warnings normally, failures under --strict.
    one_sided = failures if strict else warnings

    for bench, cur in sorted(current.items()):
        base = baseline.get(bench)
        if base is None:
            one_sided.append(f"{bench}: no baseline (new bench?)")
            continue
        for report, side in ((base, "baseline"), (cur, "current")):
            if report["schema_version"] != schema_version:
                failures.append(
                    f"{bench}: {side} schema_version "
                    f"{report['schema_version']} != expected {schema_version}")
        if base.get("config") != cur.get("config"):
            warnings.append(
                f"{bench}: config differs ({base.get('config')} vs "
                f"{cur.get('config')}); numbers may not be comparable")

        base_results = {r["name"]: r for r in base["results"]}
        for result in cur["results"]:
            name = result["name"]
            base_result = base_results.pop(name, None)
            if base_result is None:
                one_sided.append(f"{bench}/{name}: not in baseline")
                continue
            if result.get("unit") != base_result.get("unit"):
                failures.append(
                    f"{bench}/{name}: unit changed "
                    f"({base_result.get('unit')} -> {result.get('unit')})")
                continue
            base_value = result_metric(base_result)
            cur_value = result_metric(result)
            if base_value is None or cur_value is None:
                warnings.append(f"{bench}/{name}: no comparable metric")
                continue
            compared += 1
            ratio = cur_value / base_value if base_value > 0 else float("inf")
            line = (f"{bench}/{name}: {base_value:.6g} -> {cur_value:.6g} "
                    f"{result.get('unit', '')} ({ratio:.2f}x)")
            if base_value > 0 and ratio > threshold:
                failures.append(f"REGRESSION {line} exceeds {threshold:.2f}x")
            else:
                print(f"  ok {line}")
        for name in base_results:
            one_sided.append(f"{bench}/{name}: dropped from current run")
        compared += check_assertions(bench, base, cur, failures, warnings)

    for bench in sorted(set(baseline) - set(current)):
        one_sided.append(f"{bench}: missing from current run")

    return compared, warnings, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline BENCH json file or dir")
    parser.add_argument("current", help="current BENCH json file or dir")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="fail when current > baseline * threshold "
                             "(default %(default)s)")
    parser.add_argument("--schema-version", type=int, default=SCHEMA_VERSION,
                        help="required schema_version (default %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="treat added/removed/missing benches and "
                             "results as failures")
    args = parser.parse_args()
    if args.threshold <= 0:
        sys.exit("error: --threshold must be positive")

    baseline = load_reports(args.baseline)
    current = load_reports(args.current)
    compared, warnings, failures = compare(
        baseline, current, args.threshold, args.schema_version,
        strict=args.strict)

    for w in warnings:
        print(f"  warn {w}")
    for f in failures:
        print(f"  FAIL {f}")
    print(f"bench_compare: {compared} results compared, "
          f"{len(warnings)} warnings, {len(failures)} failures "
          f"(threshold {args.threshold:.2f}x)")
    if compared == 0 and not failures:
        sys.exit("error: nothing compared — wrong paths?")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
