#!/usr/bin/env bash
# End-to-end smoke of htgdb-server over a real loopback socket: launch the
# server on an ephemeral port, drive a scripted htgdb-cli session (DDL ->
# load -> query -> prepared statement -> close), then SIGTERM and verify a
# clean graceful drain with no leaked process. CI's server-smoke job runs
# exactly this script; locally:
#
#     tools/server_smoke.sh build
#
# where `build` is a build tree containing src/server/htgdb-server and
# src/server/htgdb-cli. Exits nonzero on any failed statement, a server
# that dies early, a nonzero server exit, or a process that survives
# SIGTERM.
set -u

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/src/server/htgdb-server"
CLI="$BUILD_DIR/src/server/htgdb-cli"
WORK_DIR="$(mktemp -d /tmp/htgdb-smoke.XXXXXX)"
SERVER_LOG="$WORK_DIR/server.log"
SERVER_PID=""

fail() {
  echo "server_smoke: FAIL: $*" >&2
  [ -s "$SERVER_LOG" ] && { echo "--- server log ---" >&2; cat "$SERVER_LOG" >&2; }
  [ -n "$SERVER_PID" ] && kill -KILL "$SERVER_PID" 2>/dev/null
  exit 1
}

cleanup() {
  [ -n "$SERVER_PID" ] && kill -KILL "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

[ -x "$SERVER" ] || fail "$SERVER not built"
[ -x "$CLI" ] || fail "$CLI not built"

# Launch on an ephemeral port; the server prints the resolved port.
HTG_SERVER_PORT=0 "$SERVER" "$WORK_DIR/db" > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$SERVER_LOG" | head -1)"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never printed its listen port"
echo "server_smoke: server up on port $PORT (pid $SERVER_PID)"

# Scripted session: load, query, prepared-statement round trip. htgdb-cli
# exits 1 if any statement fails.
CLI_OUT="$WORK_DIR/cli.out"
"$CLI" --port "$PORT" > "$CLI_OUT" 2>&1 <<'EOF'
# load
CREATE TABLE smoke (k INT, v BIGINT)
INSERT INTO smoke VALUES (1, 10)
INSERT INTO smoke VALUES (1, 20)
INSERT INTO smoke VALUES (2, 30)
# ad-hoc query
SELECT k, COUNT(*), SUM(v) FROM smoke GROUP BY k ORDER BY k
# prepared-statement round trip
\prepare SELECT SUM(v) FROM smoke
\execute 1
\close 1
# transaction round trip: an aborted insert leaves the count unchanged,
# a committed one bumps it (BEGIN/COMMIT/ABORT cross as wire frames)
BEGIN
INSERT INTO smoke VALUES (9, 90)
ABORT
SELECT COUNT(*) FROM smoke
BEGIN;
INSERT INTO smoke VALUES (9, 90)
COMMIT;
SELECT COUNT(*) FROM smoke
\quit
EOF
CLI_STATUS=$?
echo "--- cli session ---"
cat "$CLI_OUT"
[ "$CLI_STATUS" -eq 0 ] || fail "cli session exited $CLI_STATUS"
grep -q "prepared 1" "$CLI_OUT" || fail "prepared-statement round trip missing"
grep -q "^60$" "$CLI_OUT" || fail "SUM(v) result 60 not in cli output"
# Post-ABORT count must still be 3; post-COMMIT count must be 4.
TXN_COUNTS="$(grep -x '[0-9]*' "$CLI_OUT" | tail -2 | tr '\n' ' ')"
[ "$TXN_COUNTS" = "3 4 " ] || fail "txn round trip counts were '$TXN_COUNTS' (want '3 4 ')"

# Graceful drain: SIGTERM, then the process must exit 0 and be gone.
kill -TERM "$SERVER_PID" || fail "could not signal server"
SERVER_STATUS=0
wait "$SERVER_PID" || SERVER_STATUS=$?
[ "$SERVER_STATUS" -eq 0 ] || fail "server exited $SERVER_STATUS after SIGTERM"
grep -q "shut down cleanly" "$SERVER_LOG" || fail "server log missing clean-drain line"
if kill -0 "$SERVER_PID" 2>/dev/null; then
  fail "server process leaked past SIGTERM"
fi
SERVER_PID=""

echo "--- server log ---"
cat "$SERVER_LOG"
echo "server_smoke: PASS"
