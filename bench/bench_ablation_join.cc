// Ablation: join algorithm choice for Alignment ⋈ Read. The planner's
// rule (merge join off clustered keys, hash join otherwise, nested loops
// for non-equi) is exactly the trade the paper's Fig. 10 leans on; this
// bench shows who wins at which cardinality and what clustering buys.

#include "bench/bench_util.h"
#include "workflow/loaders.h"
#include "workflow/schema.h"

namespace htg::bench {
namespace {

void Run() {
  printf("== Ablation: join algorithm for Alignment ⋈ Read ==\n");
  printf("HTG_SCALE=%.2f\n\n", Scale());

  TablePrinter table({"rows", "merge (clustered)", "hash (heap)",
                      "merge advantage"});

  for (uint64_t rows : {Scaled(20'000), Scaled(80'000), Scaled(200'000)}) {
    LaneConfig config;
    config.dge = false;
    config.chromosomes = 4;
    config.reference_bases = std::max<uint64_t>(100'000, rows);
    config.num_reads = rows;
    config.work_dir = "/tmp/htgdb_bench_join";
    config.seed = 5000 + rows;
    Lane lane = MakeLane(config);

    const std::string join_sql =
        "SELECT COUNT(*) FROM Alignment JOIN Read ON a_r_id = r_id";
    double seconds[2] = {0, 0};
    for (int clustered = 1; clustered >= 0; --clustered) {
      BenchDb bench = OpenBenchDb(StringPrintf("join_%d_%llu", clustered,
                                               static_cast<unsigned long long>(
                                                   rows)));
      workflow::SchemaOptions schema_options;
      schema_options.clustered_join_keys = clustered == 1;
      CheckOk(workflow::CreateGenomicsSchema(bench.engine.get(),
                                             schema_options),
              "schema");
      CheckOk(workflow::LoadReads(bench.db.get(), "Read", lane.reads,
                                  {1, 1, 1}),
              "load reads");
      CheckOk(workflow::LoadAlignments(bench.db.get(), "Alignment",
                                       lane.alignments, {1, 1, 1}),
              "load alignments");
      const std::string plan =
          CheckOk(bench.engine->Explain(join_sql), "explain");
      const bool is_merge = plan.find("Merge Join") != std::string::npos;
      if (is_merge != (clustered == 1)) {
        fprintf(stderr, "unexpected plan:\n%s\n", plan.c_str());
        exit(1);
      }
      CheckOk(bench.engine->Execute(join_sql).ok() ? Status::OK()
                                                   : Status::Internal("warm"),
              "warm");
      double best = 1e30;
      for (int i = 0; i < 3; ++i) {
        Stopwatch timer;
        Result<sql::QueryResult> result = bench.engine->Execute(join_sql);
        CheckOk(result.ok() ? Status::OK() : result.status(), "join");
        best = std::min(best, timer.ElapsedSeconds());
      }
      seconds[clustered] = best;
    }
    table.AddRow({std::to_string(lane.alignments.size()),
                  StringPrintf("%.3f s", seconds[1]),
                  StringPrintf("%.3f s", seconds[0]),
                  StringPrintf("%.2fx", seconds[0] / seconds[1])});
  }
  table.Print();
  printf("\nShape: the merge join off clustered indexes avoids the hash "
         "build and stays ahead as the lane grows — the physical-design "
         "lever behind the paper's Fig. 10 plan.\n");
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
