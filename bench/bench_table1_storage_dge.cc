// Reproduces Table 1 of the paper: storage efficiency of the physical
// designs for a digital-gene-expression lane — original files, FileStream
// BLOBs, a straightforward 1:1 relational import, the normalized schema,
// and the normalized schema under ROW and PAGE compression.
//
// Expected shape (paper §5.1.1): FileStream == Files; 1:1 import blows up
// (roughly 2x on the read data); normalized ≈ files; ROW < normalized;
// PAGE < ROW (dictionary compression thrives on repetitive DGE tags).

#include "bench/bench_util.h"
#include "workflow/loaders.h"
#include "workflow/schema.h"

namespace htg::bench {
namespace {

struct Variant {
  std::string label;
  std::string suffix;
  storage::Compression compression;
};

uint64_t TableBytes(Database* db, const std::string& name) {
  return CheckOk(db->GetTable(name), "get table")->table->Stats().data_bytes;
}

uint64_t PoolCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

int64_t CountRows(sql::SqlEngine* engine, const std::string& table) {
  sql::QueryResult result = CheckOk(
      engine->Execute("SELECT COUNT(*) FROM " + table), "count rows");
  if (result.rows.size() != 1) {
    fprintf(stderr, "FATAL COUNT(*) returned %zu rows\n", result.rows.size());
    exit(1);
  }
  return result.rows[0][0].AsInt64();
}

// Cold-vs-warm scan sweep over the normalized read table, plus a
// deliberately undersized pool that must evict and still answer
// correctly. Emitted as a separate BENCH_bufferpool.json so the storage
// byte counts above stay decoupled from cache-behaviour baselines.
void RunBufferPoolSweep(Database* db, sql::SqlEngine* engine,
                        const Lane& lane, const LaneConfig& config) {
  storage::BufferPool* pool = db->buffer_pool();
  if (pool == nullptr) {
    printf("\nbuffer pool disabled; skipping cold/warm sweep\n");
    return;
  }
  printf("\n== Buffer pool: cold vs warm scans of Read_n ==\n");
  BenchReport report("bufferpool");
  report.SetConfig("scale", Scale());
  report.SetConfig("reads", static_cast<double>(config.num_reads));
  report.SetConfig("pool_mb",
                   static_cast<double>(pool->capacity_bytes() >> 20));

  const int64_t expected = static_cast<int64_t>(lane.reads.size());
  const auto check_scan = [&] {
    const int64_t rows = CountRows(engine, "Read_n");
    if (rows != expected) {
      fprintf(stderr, "FATAL scan returned %lld rows, want %lld\n",
              static_cast<long long>(rows),
              static_cast<long long>(expected));
      exit(1);
    }
  };

  // Cold: every rep starts from an empty cache (dirty pages written back,
  // frames dropped), so the scan re-reads the spill file.
  const double cold = report.MeasureSeconds("scan_cold", 10, [&] {
    CheckOk(pool->EvictAll(), "evict all");
    check_scan();
  });
  // Warm: the previous rep's scan left every page resident.
  check_scan();
  const uint64_t hits_before = PoolCounter("bufferpool.hit");
  const uint64_t misses_before = PoolCounter("bufferpool.miss");
  const double warm = report.MeasureSeconds("scan_warm", 10, check_scan);
  const uint64_t hits = PoolCounter("bufferpool.hit") - hits_before;
  const uint64_t misses = PoolCounter("bufferpool.miss") - misses_before;
  const double hit_pct =
      hits + misses > 0
          ? 100.0 * static_cast<double>(hits) /
                static_cast<double>(hits + misses)
          : 0.0;
  report.AddValue("warm_hit_pct", hit_pct, "percent");
  report.AddValue("warm_misses", static_cast<double>(misses), "count");
  printf("cold %.3f ms, warm %.3f ms (%.1fx), warm hit rate %.1f%%\n",
         cold * 1e3, warm * 1e3, warm > 0 ? cold / warm : 0.0, hit_pct);

  // Undersized pool: the read table's working set far exceeds 64 KiB, so
  // loading + scanning must cycle pages through eviction — and the scan
  // must still see every row.
  DatabaseOptions small_options;
  small_options.filestream_root = config.work_dir + "_smallpool_fs";
  small_options.buffer_pool_bytes = 64 * 1024;
  auto small_db = CheckOk(Database::Open("table1_smallpool", small_options),
                          "open small-pool db");
  CheckOk(small_db->filestream()->Clear(), "clear small-pool store");
  sql::SqlEngine small_engine(small_db.get());
  workflow::SchemaOptions schema_options;
  schema_options.suffix = "_sp";
  CheckOk(workflow::CreateGenomicsSchema(&small_engine, schema_options),
          "small-pool schema");
  const uint64_t evictions_before = PoolCounter("bufferpool.evict");
  CheckOk(workflow::LoadReads(small_db.get(), "Read_sp", lane.reads,
                              {1, 1, 1}),
          "small-pool load");
  const int64_t small_rows = CountRows(&small_engine, "Read_sp");
  const uint64_t evictions = PoolCounter("bufferpool.evict") -
                             evictions_before;
  if (small_rows != expected || evictions == 0) {
    fprintf(stderr,
            "FATAL small-pool scan: %lld rows (want %lld), %llu evictions "
            "(want > 0)\n",
            static_cast<long long>(small_rows),
            static_cast<long long>(expected),
            static_cast<unsigned long long>(evictions));
    exit(1);
  }
  report.AddValue("small_pool_evictions", static_cast<double>(evictions),
                  "count");
  printf("64 KiB pool: %llu evictions, scan still %lld rows\n",
         static_cast<unsigned long long>(evictions),
         static_cast<long long>(small_rows));
  report.Write();
}

void Run() {
  LaneConfig config;
  config.dge = true;
  config.num_reads = Scaled(60'000);
  config.dge_genes = static_cast<int>(Scaled(4'000));
  config.work_dir = "/tmp/htgdb_bench_table1";
  printf("== Table 1: storage efficiency, digital gene expression ==\n");
  printf("lane: %llu reads, %llu-base reference, HTG_SCALE=%.2f\n\n",
         static_cast<unsigned long long>(config.num_reads),
         static_cast<unsigned long long>(config.reference_bases), Scale());
  BenchReport report("table1_storage_dge");
  report.SetConfig("scale", Scale());
  report.SetConfig("reads", static_cast<double>(config.num_reads));
  Lane lane = MakeLane(config);
  printf("unique tags: %zu, alignments: %zu\n\n", lane.tags.size(),
         lane.alignments.size());

  BenchDb bench = OpenBenchDb("table1");
  Database* db = bench.db.get();
  sql::SqlEngine* engine = bench.engine.get();

  // FileStream: bulk-import the level-1 file into the hybrid design.
  CheckOk(workflow::CreateGenomicsSchema(engine, {}), "create fs schema");
  CheckOk(workflow::ImportFastqAsFileStream(engine, "ShortReadFiles",
                                            lane.fastq_path, 855, 1),
          "filestream import");
  const uint64_t filestream_reads = db->filestream()->TotalBytes();

  // 1:1 import.
  CheckOk(workflow::CreateOneToOneSchema(engine, "_1to1"), "1:1 schema");
  CheckOk(workflow::LoadReadsOneToOne(db, "Read_1to1", lane.reads),
          "load 1:1 reads");
  {
    auto* table = CheckOk(db->GetTable("Tag_1to1"), "tag 1:1");
    for (const genomics::TagCount& t : lane.tags) {
      CheckOk(db->InsertRow(table, Row{Value::Int64(t.rank),
                                       Value::Int64(t.frequency),
                                       Value::String(t.sequence)}),
              "insert 1:1 tag");
    }
  }
  // DGE alignments reference unique tags; the 1:1 import repeats each
  // tag's textual identifier per alignment row, as the MAQ output file
  // does.
  {
    std::vector<genomics::ShortRead> tag_ids;
    tag_ids.reserve(lane.tags.size());
    for (const genomics::TagCount& t : lane.tags) {
      tag_ids.push_back(
          {"tag_855_1_" + std::to_string(t.rank), t.sequence, ""});
    }
    CheckOk(workflow::LoadAlignmentsOneToOne(db, "Alignment_1to1",
                                             lane.alignments, tag_ids,
                                             lane.reference),
            "load 1:1 alignments");
  }

  const std::vector<Variant> variants = {
      {"Normalized", "_n", storage::Compression::kNone},
      {"Norm+ROW", "_row", storage::Compression::kRow},
      {"Norm+PAGE", "_page", storage::Compression::kPage},
  };
  for (const Variant& v : variants) {
    workflow::SchemaOptions options;
    options.suffix = v.suffix;
    options.compression = v.compression;
    CheckOk(workflow::CreateGenomicsSchema(engine, options), "schema");
    CheckOk(workflow::LoadReads(db, "Read" + v.suffix, lane.reads, {1, 1, 1}),
            "load reads");
    CheckOk(workflow::LoadTags(db, "Tag" + v.suffix, lane.tags, {1, 1, 1}),
            "load tags");
    CheckOk(workflow::LoadAlignments(db, "Alignment" + v.suffix,
                                     lane.alignments, {1, 1, 1}),
            "load alignments");
    // Gene expression rows (Query 2 output shape).
    auto* ge = CheckOk(db->GetTable("GeneExpression" + v.suffix), "ge");
    std::vector<genomics::AlignedTag> aligned;
    for (const genomics::Alignment& a : lane.alignments) {
      aligned.push_back({a.chromosome * 1'000'000 + a.position / 1000,
                         a.read_id, lane.tags[a.read_id].frequency});
    }
    for (const genomics::GeneExpression& g :
         genomics::AggregateExpression(aligned)) {
      CheckOk(db->InsertRow(
                  ge, Row{Value::Int32(static_cast<int32_t>(g.gene_id)),
                          Value::Int32(1), Value::Int32(1), Value::Int32(1),
                          Value::Int64(g.total_frequency),
                          Value::Int64(g.tag_count)}),
              "insert expression");
    }
  }
  // Gene expression 1:1 (textual gene + sample names).
  {
    auto* table = CheckOk(db->GetTable("GeneExpression_1to1"), "ge 1:1");
    std::vector<genomics::AlignedTag> aligned;
    for (const genomics::Alignment& a : lane.alignments) {
      aligned.push_back({a.chromosome * 1'000'000 + a.position / 1000,
                         a.read_id, lane.tags[a.read_id].frequency});
    }
    for (const genomics::GeneExpression& g :
         genomics::AggregateExpression(aligned)) {
      CheckOk(db->InsertRow(
                  table,
                  Row{Value::String("gene_" + std::to_string(g.gene_id)),
                      Value::String("sample_855_lane_1"),
                      Value::Int64(g.total_frequency),
                      Value::Int64(g.tag_count)}),
              "insert 1:1 expression");
    }
  }

  struct DataSet {
    std::string label;
    uint64_t files;
    uint64_t filestream;
    std::string table;
  };
  const std::vector<DataSet> datasets = {
      {"Short Reads (level-1)", FileBytes(lane.fastq_path), filestream_reads,
       "Read"},
      {"Unique Tags", FileBytes(lane.tags_path), 0, "Tag"},
      {"Alignments (level-2)", FileBytes(lane.alignments_path), 0,
       "Alignment"},
      {"Gene Expression (level-3)", FileBytes(lane.expression_path), 0,
       "GeneExpression"},
  };

  TablePrinter table({"Data set", "Files", "FileStream", "1:1 import",
                      "Normalized", "Norm+ROW", "Norm+PAGE"});
  for (const DataSet& d : datasets) {
    const uint64_t base = d.files;
    table.AddRow({
        d.label,
        HumanBytes(d.files),
        d.filestream > 0 ? BytesCell(d.filestream, base) : "-",
        BytesCell(TableBytes(db, d.table + "_1to1"), base),
        BytesCell(TableBytes(db, d.table + "_n"), base),
        BytesCell(TableBytes(db, d.table + "_row"), base),
        BytesCell(TableBytes(db, d.table + "_page"), base),
    });
    report.AddValue(d.table + "_files", static_cast<double>(d.files),
                    "bytes");
    for (const char* suffix : {"_1to1", "_n", "_row", "_page"}) {
      report.AddValue(d.table + suffix,
                      static_cast<double>(TableBytes(db, d.table + suffix)),
                      "bytes");
    }
  }
  report.AddValue("Read_filestream", static_cast<double>(filestream_reads),
                  "bytes");
  printf("\n");
  table.Print();
  printf(
      "\nPaper shape check: FileStream == Files; 1:1 > Files; "
      "PAGE < ROW < Normalized on repetitive DGE data.\n");
  report.Write();

  RunBufferPoolSweep(db, engine, lane, config);
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
