// Reproduces Table 1 of the paper: storage efficiency of the physical
// designs for a digital-gene-expression lane — original files, FileStream
// BLOBs, a straightforward 1:1 relational import, the normalized schema,
// and the normalized schema under ROW and PAGE compression.
//
// Expected shape (paper §5.1.1): FileStream == Files; 1:1 import blows up
// (roughly 2x on the read data); normalized ≈ files; ROW < normalized;
// PAGE < ROW (dictionary compression thrives on repetitive DGE tags).

#include "bench/bench_util.h"
#include "workflow/loaders.h"
#include "workflow/schema.h"

namespace htg::bench {
namespace {

struct Variant {
  std::string label;
  std::string suffix;
  storage::Compression compression;
};

uint64_t TableBytes(Database* db, const std::string& name) {
  return CheckOk(db->GetTable(name), "get table")->table->Stats().data_bytes;
}

void Run() {
  LaneConfig config;
  config.dge = true;
  config.num_reads = Scaled(60'000);
  config.dge_genes = static_cast<int>(Scaled(4'000));
  config.work_dir = "/tmp/htgdb_bench_table1";
  printf("== Table 1: storage efficiency, digital gene expression ==\n");
  printf("lane: %llu reads, %llu-base reference, HTG_SCALE=%.2f\n\n",
         static_cast<unsigned long long>(config.num_reads),
         static_cast<unsigned long long>(config.reference_bases), Scale());
  BenchReport report("table1_storage_dge");
  report.SetConfig("scale", Scale());
  report.SetConfig("reads", static_cast<double>(config.num_reads));
  Lane lane = MakeLane(config);
  printf("unique tags: %zu, alignments: %zu\n\n", lane.tags.size(),
         lane.alignments.size());

  BenchDb bench = OpenBenchDb("table1");
  Database* db = bench.db.get();
  sql::SqlEngine* engine = bench.engine.get();

  // FileStream: bulk-import the level-1 file into the hybrid design.
  CheckOk(workflow::CreateGenomicsSchema(engine, {}), "create fs schema");
  CheckOk(workflow::ImportFastqAsFileStream(engine, "ShortReadFiles",
                                            lane.fastq_path, 855, 1),
          "filestream import");
  const uint64_t filestream_reads = db->filestream()->TotalBytes();

  // 1:1 import.
  CheckOk(workflow::CreateOneToOneSchema(engine, "_1to1"), "1:1 schema");
  CheckOk(workflow::LoadReadsOneToOne(db, "Read_1to1", lane.reads),
          "load 1:1 reads");
  {
    auto* table = CheckOk(db->GetTable("Tag_1to1"), "tag 1:1");
    for (const genomics::TagCount& t : lane.tags) {
      CheckOk(db->InsertRow(table, Row{Value::Int64(t.rank),
                                       Value::Int64(t.frequency),
                                       Value::String(t.sequence)}),
              "insert 1:1 tag");
    }
  }
  // DGE alignments reference unique tags; the 1:1 import repeats each
  // tag's textual identifier per alignment row, as the MAQ output file
  // does.
  {
    std::vector<genomics::ShortRead> tag_ids;
    tag_ids.reserve(lane.tags.size());
    for (const genomics::TagCount& t : lane.tags) {
      tag_ids.push_back(
          {"tag_855_1_" + std::to_string(t.rank), t.sequence, ""});
    }
    CheckOk(workflow::LoadAlignmentsOneToOne(db, "Alignment_1to1",
                                             lane.alignments, tag_ids,
                                             lane.reference),
            "load 1:1 alignments");
  }

  const std::vector<Variant> variants = {
      {"Normalized", "_n", storage::Compression::kNone},
      {"Norm+ROW", "_row", storage::Compression::kRow},
      {"Norm+PAGE", "_page", storage::Compression::kPage},
  };
  for (const Variant& v : variants) {
    workflow::SchemaOptions options;
    options.suffix = v.suffix;
    options.compression = v.compression;
    CheckOk(workflow::CreateGenomicsSchema(engine, options), "schema");
    CheckOk(workflow::LoadReads(db, "Read" + v.suffix, lane.reads, {1, 1, 1}),
            "load reads");
    CheckOk(workflow::LoadTags(db, "Tag" + v.suffix, lane.tags, {1, 1, 1}),
            "load tags");
    CheckOk(workflow::LoadAlignments(db, "Alignment" + v.suffix,
                                     lane.alignments, {1, 1, 1}),
            "load alignments");
    // Gene expression rows (Query 2 output shape).
    auto* ge = CheckOk(db->GetTable("GeneExpression" + v.suffix), "ge");
    std::vector<genomics::AlignedTag> aligned;
    for (const genomics::Alignment& a : lane.alignments) {
      aligned.push_back({a.chromosome * 1'000'000 + a.position / 1000,
                         a.read_id, lane.tags[a.read_id].frequency});
    }
    for (const genomics::GeneExpression& g :
         genomics::AggregateExpression(aligned)) {
      CheckOk(db->InsertRow(
                  ge, Row{Value::Int32(static_cast<int32_t>(g.gene_id)),
                          Value::Int32(1), Value::Int32(1), Value::Int32(1),
                          Value::Int64(g.total_frequency),
                          Value::Int64(g.tag_count)}),
              "insert expression");
    }
  }
  // Gene expression 1:1 (textual gene + sample names).
  {
    auto* table = CheckOk(db->GetTable("GeneExpression_1to1"), "ge 1:1");
    std::vector<genomics::AlignedTag> aligned;
    for (const genomics::Alignment& a : lane.alignments) {
      aligned.push_back({a.chromosome * 1'000'000 + a.position / 1000,
                         a.read_id, lane.tags[a.read_id].frequency});
    }
    for (const genomics::GeneExpression& g :
         genomics::AggregateExpression(aligned)) {
      CheckOk(db->InsertRow(
                  table,
                  Row{Value::String("gene_" + std::to_string(g.gene_id)),
                      Value::String("sample_855_lane_1"),
                      Value::Int64(g.total_frequency),
                      Value::Int64(g.tag_count)}),
              "insert 1:1 expression");
    }
  }

  struct DataSet {
    std::string label;
    uint64_t files;
    uint64_t filestream;
    std::string table;
  };
  const std::vector<DataSet> datasets = {
      {"Short Reads (level-1)", FileBytes(lane.fastq_path), filestream_reads,
       "Read"},
      {"Unique Tags", FileBytes(lane.tags_path), 0, "Tag"},
      {"Alignments (level-2)", FileBytes(lane.alignments_path), 0,
       "Alignment"},
      {"Gene Expression (level-3)", FileBytes(lane.expression_path), 0,
       "GeneExpression"},
  };

  TablePrinter table({"Data set", "Files", "FileStream", "1:1 import",
                      "Normalized", "Norm+ROW", "Norm+PAGE"});
  for (const DataSet& d : datasets) {
    const uint64_t base = d.files;
    table.AddRow({
        d.label,
        HumanBytes(d.files),
        d.filestream > 0 ? BytesCell(d.filestream, base) : "-",
        BytesCell(TableBytes(db, d.table + "_1to1"), base),
        BytesCell(TableBytes(db, d.table + "_n"), base),
        BytesCell(TableBytes(db, d.table + "_row"), base),
        BytesCell(TableBytes(db, d.table + "_page"), base),
    });
    report.AddValue(d.table + "_files", static_cast<double>(d.files),
                    "bytes");
    for (const char* suffix : {"_1to1", "_n", "_row", "_page"}) {
      report.AddValue(d.table + suffix,
                      static_cast<double>(TableBytes(db, d.table + suffix)),
                      "bytes");
    }
  }
  report.AddValue("Read_filestream", static_cast<double>(filestream_reads),
                  "bytes");
  printf("\n");
  table.Print();
  printf(
      "\nPaper shape check: FileStream == Files; 1:1 > Files; "
      "PAGE < ROW < Normalized on repetitive DGE data.\n");
  report.Write();
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
