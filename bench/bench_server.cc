// Multi-client server sweep: the same fixed batch of read statements
// pushed through htgdb-server by 1, 4, and 16 concurrent wire clients.
// Per-statement execution is pinned to max_dop=1 so session concurrency
// is the only scaling axis — the wall-clock ratio between arms is the
// server's concurrency payoff, not the executor's. The checked-in
// baseline carries monotone assertions over [wall_clients1,
// wall_clients4, wall_clients16]; the 1 -> 16 edge at tolerance 0.5 is
// the CI gate that 16 clients sustain at least 2x the single-client
// throughput on mixed reads.
//
// A final informational arm mixes one token-carrying writer among three
// readers — the table-lock interleave and dedupe-token path under load.
//
// The MVCC arms run the same reader workload twice: against an idle
// server (wall_reader_idle) and concurrent with an open BEGIN bulk-load
// transaction (wall_reader_during_load). Snapshot reads take no table
// lock, so the two should track each other — the baseline's monotone
// assertion (tolerance 2.5) is the CI gate that a SELECT does not queue
// behind a loader. Every COUNT(*) the concurrent reader runs must equal
// the pre-load row count: the snapshot-consistency check is in-process
// and fatal.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/client.h"
#include "server/server.h"

namespace htg::bench {
namespace {

// Read statements rotated per op: full-table aggregate, filtered
// aggregate, and a grouped min/max over a key prefix.
const char* const kReadQueries[] = {
    "SELECT k, COUNT(*), SUM(v) FROM reads GROUP BY k",
    "SELECT COUNT(*), SUM(v) FROM reads WHERE v < 500000",
    "SELECT k, MIN(tag), MAX(v) FROM reads WHERE k < 32 GROUP BY k",
};
constexpr int kNumReadQueries = 3;

std::unique_ptr<server::Client> ConnectClient(uint16_t port) {
  return CheckOk(server::Client::Connect(port, "bench-server"), "connect");
}

// One client's share of an arm: `ops` statements over a fresh
// connection, query choice rotated by (client_id + op index).
void RunReadClient(uint16_t port, int client_id, uint64_t ops) {
  std::unique_ptr<server::Client> client = ConnectClient(port);
  for (uint64_t i = 0; i < ops; ++i) {
    const char* sql = kReadQueries[(client_id + i) % kNumReadQueries];
    server::ClientResult result = CheckOk(client->Query(sql), "read op");
    if (result.rows.empty()) {
      fprintf(stderr, "FATAL read op returned no rows\n");
      exit(1);
    }
  }
  client->Goodbye();
}

// Reader arm for the MVCC sweep: `ops` statements alternating a
// COUNT(*) — which must equal `expect_rows` exactly, even while a bulk
// load is appending in an open transaction — with the rotated read
// queries.
void RunSnapshotReader(uint16_t port, uint64_t ops, int64_t expect_rows) {
  std::unique_ptr<server::Client> client = ConnectClient(port);
  for (uint64_t i = 0; i < ops; ++i) {
    if (i % 2 == 0) {
      server::ClientResult result =
          CheckOk(client->Query("SELECT COUNT(*) FROM reads"), "count op");
      if (result.rows.empty() ||
          result.rows[0][0].AsInt64() != expect_rows) {
        fprintf(stderr,
                "FATAL snapshot reader saw %lld rows, want %lld — a "
                "concurrent load leaked into the snapshot\n",
                result.rows.empty()
                    ? -1ll
                    : static_cast<long long>(result.rows[0][0].AsInt64()),
                static_cast<long long>(expect_rows));
        exit(1);
      }
    } else {
      const char* sql = kReadQueries[i % kNumReadQueries];
      server::ClientResult result = CheckOk(client->Query(sql), "read op");
      if (result.rows.empty()) {
        fprintf(stderr, "FATAL read op returned no rows\n");
        exit(1);
      }
    }
  }
  client->Goodbye();
}

// Whole arm: N clients splitting `total_ops` evenly, wall-clocked by
// the caller (BenchReport::MeasureSeconds).
void RunArm(uint16_t port, int clients, uint64_t total_ops) {
  const uint64_t per_client = total_ops / clients;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(
        [port, c, per_client] { RunReadClient(port, c, per_client); });
  }
  for (std::thread& t : threads) t.join();
}

void Run() {
  const uint64_t rows = Scaled(200'000, 10'000);
  // Total statements per arm, fixed across client counts and rounded to
  // a multiple of 16 so every arm divides evenly.
  const uint64_t total_ops = ((Scaled(960, 48) + 15) / 16) * 16;
  const unsigned cores = std::thread::hardware_concurrency();

  printf("== Multi-client server: session-concurrency sweep ==\n");
  printf("HTG_SCALE=%.2f  rows=%llu  ops/arm=%llu  cores=%u\n\n", Scale(),
         static_cast<unsigned long long>(rows),
         static_cast<unsigned long long>(total_ops), cores);

  DatabaseOptions options;
  options.filestream_root = "/tmp/htgdb_bench_server";
  std::filesystem::remove_all(options.filestream_root);
  // Single-threaded statements: the sweep measures session concurrency,
  // and intra-query morsel parallelism would hand the 1-client arm every
  // core and flatten the curve.
  options.max_dop = 1;
  std::unique_ptr<Database> db =
      CheckOk(Database::Open("bench_server", options), "open");

  server::ServerOptions server_options;
  server_options.threads = 16;
  server::Server srv(db.get(), server_options);
  CheckOk(srv.Start(), "server start");

  {
    sql::SqlEngine loader(db.get());
    CheckOk(loader.Execute("CREATE TABLE reads (k INT, v BIGINT, tag "
                           "VARCHAR(32))")
                    .ok()
                ? Status::OK()
                : Status::Internal("ddl"),
            "create reads");
    catalog::TableDef* table = CheckOk(db->GetTable("reads"), "table reads");
    uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (uint64_t i = 0; i < rows; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      std::string tag(12, 'a');
      for (char& c : tag) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        c = static_cast<char>('a' + (x >> 59) % 26);
      }
      CheckOk(db->InsertRow(
                  table, Row{Value::Int32(static_cast<int32_t>(i % 256)),
                             Value::Int64(static_cast<int64_t>(x % 1000000)),
                             Value::String(std::move(tag))}),
              "insert reads");
    }
  }

  BenchReport report("server");
  report.SetConfig("scale", Scale());
  report.SetConfig("rows", static_cast<double>(rows));
  report.SetConfig("ops_per_arm", static_cast<double>(total_ops));
  report.SetConfig("server_threads", 16.0);

  // Warm-up: every query once, outside any timed region.
  {
    std::unique_ptr<server::Client> warm = ConnectClient(srv.port());
    for (const char* sql : kReadQueries) {
      HTG_IGNORE_STATUS(warm->Query(sql).status());
    }
    warm->Goodbye();
  }

  TablePrinter table({"clients", "wall", "stmts/s", "speedup"});
  const int kArms[] = {1, 4, 16};
  double wall[3] = {0, 0, 0};
  for (int a = 0; a < 3; ++a) {
    const int clients = kArms[a];
    wall[a] = report.MeasureSeconds(
        StringPrintf("wall_clients%d", clients), 3,
        [&] { RunArm(srv.port(), clients, total_ops); });
    table.AddRow({StringPrintf("%d", clients),
                  StringPrintf("%.3f s", wall[a]),
                  StringPrintf("%.0f", static_cast<double>(total_ops) / wall[a]),
                  StringPrintf("%.2fx", wall[0] / wall[a])});
  }

  // Informational arm: three readers plus one writer inserting with
  // explicit dedupe tokens — readers queue on the table lock only for
  // the writer's statement-length critical sections.
  std::atomic<uint64_t> write_seq{0};
  const double mixed = report.MeasureSeconds("wall_mixed_rw_clients4", 3, [&] {
    std::vector<std::thread> threads;
    for (int c = 0; c < 3; ++c) {
      threads.emplace_back([&srv, c, total_ops] {
        RunReadClient(srv.port(), c, total_ops / 16);
      });
    }
    threads.emplace_back([&srv, &write_seq, total_ops] {
      std::unique_ptr<server::Client> writer = ConnectClient(srv.port());
      for (uint64_t i = 0; i < total_ops / 16; ++i) {
        const uint64_t seq = write_seq.fetch_add(1);
        CheckOk(writer->Query(
                    StringPrintf("INSERT INTO reads VALUES (%llu, %llu, "
                                 "'bench')",
                                 static_cast<unsigned long long>(seq % 256),
                                 static_cast<unsigned long long>(seq)),
                    StringPrintf("bench-server:%llu",
                                 static_cast<unsigned long long>(seq))),
                "write op");
      }
      writer->Goodbye();
    });
    for (std::thread& t : threads) t.join();
  });
  table.AddRow({"3r+1w", StringPrintf("%.3f s", mixed), "-", "-"});

  // MVCC arms: one reader against an idle server, then the same reader
  // concurrent with an open BEGIN bulk-load transaction that aborts at
  // rep end (keeping the row count reproducible across reps). Snapshot
  // reads take no table lock, so the during-load wall should track the
  // idle wall rather than the load's duration.
  const uint64_t reader_ops = std::max<uint64_t>(total_ops / 4, 8);
  int64_t base_count = 0;
  {
    std::unique_ptr<server::Client> probe = ConnectClient(srv.port());
    server::ClientResult counted =
        CheckOk(probe->Query("SELECT COUNT(*) FROM reads"), "base count");
    base_count = counted.rows[0][0].AsInt64();
    probe->Goodbye();
  }
  const double reader_idle =
      report.MeasureSeconds("wall_reader_idle", 3, [&] {
        RunSnapshotReader(srv.port(), reader_ops, base_count);
      });
  const double reader_during =
      report.MeasureSeconds("wall_reader_during_load", 3, [&] {
        std::atomic<bool> stop{false};
        std::atomic<bool> loading{false};
        std::thread loader([&] {
          std::unique_ptr<server::Client> writer = ConnectClient(srv.port());
          CheckOk(writer->Begin(), "load begin");
          uint64_t seq = 0;
          // First insert takes the table-exclusive lock; only after it
          // lands is the reader provably scanning concurrent with a
          // loader that holds the table.
          CheckOk(writer->Query("INSERT INTO reads VALUES (0, 0, 'load')")
                      .status(),
                  "load op");
          loading.store(true, std::memory_order_release);
          while (!stop.load(std::memory_order_relaxed)) {
            CheckOk(writer
                        ->Query(StringPrintf(
                            "INSERT INTO reads VALUES (%llu, %llu, 'load')",
                            static_cast<unsigned long long>(seq % 256),
                            static_cast<unsigned long long>(seq)))
                        .status(),
                    "load op");
            ++seq;
          }
          CheckOk(writer->Abort(), "load abort");
          writer->Goodbye();
        });
        while (!loading.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        RunSnapshotReader(srv.port(), reader_ops, base_count);
        stop.store(true, std::memory_order_relaxed);
        loader.join();
      });
  table.AddRow({"1r idle", StringPrintf("%.3f s", reader_idle), "-", "-"});
  table.AddRow({"1r+load", StringPrintf("%.3f s", reader_during), "-", "-"});

  table.Print();

  const double speedup16 = wall[0] / wall[2];
  printf("\nShape: fixed work, rising client counts — wall clock should "
         "fall until the cores run out. 16 clients sustain %.2fx the "
         "single-client throughput.\n", speedup16);
  printf("MVCC: reader during open bulk load ran at %.2fx its idle wall "
         "(snapshot reads take no table lock; every concurrent COUNT saw "
         "the consistent pre-load count).\n",
         reader_during / std::max(reader_idle, 1e-9));

  if (srv.locks()->LockedTableCount() != 0) {
    fprintf(stderr, "FATAL %zu table locks leaked after the sweep\n",
            srv.locks()->LockedTableCount());
    exit(1);
  }
  // The >= 2x concurrency gate, enforced in-process wherever the
  // hardware can express it (CI runners have 4 vCPUs; the baseline's
  // monotone assertion re-checks the same edge machine-independently).
  if (cores >= 4 && speedup16 < 2.0) {
    fprintf(stderr,
            "FATAL 16-client throughput is %.2fx the 1-client arm on %u "
            "cores (gate: >= 2x)\n",
            speedup16, cores);
    exit(1);
  }

  srv.Shutdown();
  report.Write();
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
