// Reproduces Figures 7 & 8 (and the §5.3.2 runtime comparison): unique-read
// binning as a sequential script versus the declarative Query 1 inside the
// engine.
//
//   paper: 26-line Perl script, 10 min, one core, three serial phases
//          (read-all → process → write);
//          SQL Query 1 on SQL Server 2008: 44 s, all four cores.
//
// Here: the script baseline is a deliberately sequential C++ program with
// the same phase structure (its per-phase timings are the Fig. 7 profile),
// and Query 1 runs through the SQL engine serially (DOP=1) and in the
// parallel plan of Fig. 9 (DOP=hardware). The expected shape: the parallel
// query beats the script and scales with cores. (The Perl-vs-C++ constant
// factor is discussed in EXPERIMENTS.md.)

#include <algorithm>
#include <thread>

#include "baseline/script_binning.h"
#include "bench/bench_util.h"
#include "workflow/loaders.h"
#include "workflow/schema.h"

namespace htg::bench {
namespace {

const char* kQuery1 =
    "SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC) AS rank, "
    "COUNT(*) AS freq, short_read_seq "
    "FROM Read "
    "WHERE r_e_id=1 AND r_sg_id=2 AND r_s_id=1 "
    "  AND CHARINDEX('N', short_read_seq) = 0 "
    "GROUP BY short_read_seq";

void Run() {
  LaneConfig config;
  config.dge = true;
  config.num_reads = Scaled(250'000);
  config.dge_genes = static_cast<int>(Scaled(20'000));
  config.work_dir = "/tmp/htgdb_bench_fig7";
  printf("== Fig. 7/8 + §5.3.2: unique-read binning, script vs SQL ==\n");
  printf("DGE lane: %llu reads, HTG_SCALE=%.2f\n\n",
         static_cast<unsigned long long>(config.num_reads), Scale());
  BenchReport report("fig7_binning");
  report.SetConfig("scale", Scale());
  report.SetConfig("reads", static_cast<double>(config.num_reads));
  Lane lane = MakeLane(config);

  // --- The sequential script (Fig. 7) --------------------------------
  const std::string script_out = config.work_dir + "/script_tags.txt";
  Result<baseline::ScriptBinningReport> script =
      baseline::RunScriptBinning(lane.fastq_path, script_out);
  CheckOk(script.ok() ? Status::OK() : script.status(), "script binning");
  printf("Fig. 7 — script resource profile (strictly serial, one core):\n");
  printf("  phase 1 read file into memory : %6.3f s\n",
         script->read_seconds);
  printf("  phase 2 bin + rank            : %6.3f s\n",
         script->process_seconds);
  printf("  phase 3 write result          : %6.3f s\n",
         script->write_seconds);
  printf("  total                         : %6.3f s  (%llu reads -> %llu "
         "unique)\n\n",
         script->TotalSeconds(),
         static_cast<unsigned long long>(script->reads_total),
         static_cast<unsigned long long>(script->unique_tags));
  report.AddTimings("script_total", {script->TotalSeconds()});

  // --- Query 1 in the engine (Fig. 8) --------------------------------
  BenchDb bench = OpenBenchDb("fig7");
  CheckOk(workflow::CreateGenomicsSchema(bench.engine.get(), {}),
          "create schema");
  Stopwatch load_timer;
  CheckOk(workflow::LoadReads(bench.db.get(), "Read", lane.reads, {1, 2, 1}),
          "load reads");
  const double load_seconds = load_timer.ElapsedSeconds();

  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int parallel_dop = std::max(4, hw);
  report.SetConfig("parallel_dop", parallel_dop);
  TablePrinter table({"Configuration", "unique tags", "seconds",
                      "speedup vs script"});
  uint64_t sql_unique = 0;
  for (int dop : {1, parallel_dop}) {
    bench.db->set_max_dop(dop);
    uint64_t result_rows = 0;
    const double seconds = report.MeasureSeconds(
        StringPrintf("query1_dop%d", dop), 3, [&] {
          Result<sql::QueryResult> result = bench.engine->Execute(kQuery1);
          CheckOk(result.ok() ? Status::OK() : result.status(), "query 1");
          result_rows = result->rows.size();
        });
    sql_unique = result_rows;
    table.AddRow({StringPrintf("SQL Query 1, DOP=%d", dop),
                  std::to_string(result_rows),
                  StringPrintf("%.3f", seconds),
                  StringPrintf("%.1fx", script->TotalSeconds() / seconds)});
  }
  table.AddRow({"Sequential script", std::to_string(script->unique_tags),
                StringPrintf("%.3f", script->TotalSeconds()), "1.0x"});
  table.Print();
  printf("\n(one-time relational load of the lane: %.3f s)\n", load_seconds);

  if (sql_unique != script->unique_tags) {
    fprintf(stderr, "MISMATCH: SQL %llu unique tags vs script %llu\n",
            static_cast<unsigned long long>(sql_unique),
            static_cast<unsigned long long>(script->unique_tags));
    exit(1);
  }
  printf("\nBoth approaches produce the same %llu unique reads "
         "(paper: 565,526 at full scale).\n",
         static_cast<unsigned long long>(sql_unique));
  printf("Paper shape check: the declarative query beats the sequential "
         "file-centric script.\n");

  // --- Metrics-instrumentation overhead --------------------------------
  // Same query with the metrics registry recording vs. the kill switch
  // off; the delta bounds the cost of the always-on observability layer.
  {
    bench.db->set_max_dop(parallel_dop);
    CheckOk(bench.engine->Execute(kQuery1).status(), "overhead warmup");
    // Interleave on/off reps so drift (page cache, frequency scaling,
    // allocator state) lands on both sides equally instead of biasing
    // whichever phase runs first.
    std::vector<double> on_reps, off_reps;
    for (int run = 0; run < 7; ++run) {
      for (bool enabled : {true, false}) {
        obs::SetMetricsEnabled(enabled);
        Stopwatch timer;
        CheckOk(bench.engine->Execute(kQuery1).status(), "overhead run");
        (enabled ? on_reps : off_reps).push_back(timer.ElapsedSeconds());
      }
    }
    obs::SetMetricsEnabled(true);
    // Best-of: scheduler/cache noise only ever adds time, so the minimum
    // is the least-contaminated estimate of each configuration's cost.
    const double on_best = *std::min_element(on_reps.begin(), on_reps.end());
    const double off_best =
        *std::min_element(off_reps.begin(), off_reps.end());
    report.AddTimings("query1_metrics_on", std::move(on_reps));
    report.AddTimings("query1_metrics_off", std::move(off_reps));
    printf("\nMetrics overhead on Query 1 (DOP=%d, interleaved best of 7): "
           "on %.3f s, off %.3f s (%+.2f%%)\n",
           parallel_dop, on_best, off_best,
           off_best > 0 ? (on_best / off_best - 1.0) * 100.0 : 0.0);
  }

  // --- CROSS APPLY pipeline DOP sweep ---------------------------------
  // The per-read pivot (the §5.3.3 alignment shape) is the CPU-heavy
  // pipeline the morsel-parallel exchange targets: scan → CROSS APPLY →
  // partial/final aggregate.
  const char* kPivotQuery =
      "SELECT base, COUNT(*) AS n FROM Read "
      "CROSS APPLY PivotAlignment(0, short_read_seq, quality) AS pa "
      "GROUP BY base";
  printf("\n--- CROSS APPLY pipeline DOP sweep (pivot every read) ---\n");
  bench.db->set_max_dop(parallel_dop);
  printf("%s\n",
         CheckOk(bench.engine->Explain(kPivotQuery), "explain pivot").c_str());
  TablePrinter pivot_table({"DOP", "seconds", "speedup vs DOP=1"});
  double pivot_base = 0;
  uint64_t pivot_groups = 0;
  for (int dop : {1, 2, parallel_dop}) {
    bench.db->set_max_dop(dop);
    CheckOk(bench.engine->Execute(kPivotQuery).status(), "pivot warmup");
    std::vector<double> reps;
    double best = 1e30;
    for (int run = 0; run < 3; ++run) {
      Stopwatch timer;
      Result<sql::QueryResult> result = bench.engine->Execute(kPivotQuery);
      CheckOk(result.status(), "pivot query");
      reps.push_back(timer.ElapsedSeconds());
      best = std::min(best, reps.back());
      pivot_groups = result->rows.size();
    }
    report.AddTimings(StringPrintf("pivot_dop%d", dop), std::move(reps));
    if (dop == 1) pivot_base = best;
    pivot_table.AddRow({std::to_string(dop), StringPrintf("%.3f", best),
                        StringPrintf("%.2fx", pivot_base / best)});
  }
  pivot_table.Print();
  printf("(%llu base groups)\n",
         static_cast<unsigned long long>(pivot_groups));
  if (hw == 1) {
    printf("NOTE: this host has 1 hardware thread; the DOP=%d plan "
           "demonstrates the Fig. 9 parallel architecture but cannot show "
           "wall-clock speedup here.\n",
           parallel_dop);
  }
  report.Write();
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
