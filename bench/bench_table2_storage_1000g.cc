// Reproduces Table 2 of the paper: storage efficiency for a re-sequencing
// (1000 Genomes) lane — nearly-unique reads aligned against a
// 25-chromosome reference.
//
// Expected shape (paper §5.1.2): FileStream == Files; 1:1 import larger
// than the files; normalized smaller (≈40% savings on alignments thanks to
// numeric foreign keys); ROW/PAGE compression much less effective than in
// the DGE regime (non-uniform unique reads defeat per-page prefix and
// dictionary compression); a bit-encoded sequence UDT cuts the sequence
// payload to about a quarter.

#include "bench/bench_util.h"
#include "genomics/dna_sequence.h"
#include "workflow/loaders.h"
#include "workflow/schema.h"

namespace htg::bench {
namespace {

uint64_t TableBytes(Database* db, const std::string& name) {
  return CheckOk(db->GetTable(name), "get table")->table->Stats().data_bytes;
}

void Run() {
  LaneConfig config;
  config.dge = false;
  config.chromosomes = 25;  // the human reference's 25 sequences
  config.reference_bases = Scaled(3'000'000);
  config.num_reads = Scaled(120'000);  // paper: 6.2M reads per lane
  config.work_dir = "/tmp/htgdb_bench_table2";
  printf("== Table 2: storage efficiency, 1000 Genomes re-sequencing ==\n");
  printf("lane: %llu reads, %llu-base reference (25 chromosomes), "
         "HTG_SCALE=%.2f\n\n",
         static_cast<unsigned long long>(config.num_reads),
         static_cast<unsigned long long>(config.reference_bases), Scale());
  Lane lane = MakeLane(config);
  printf("unique reads: %zu of %zu, alignments: %zu\n\n", lane.tags.size(),
         lane.reads.size(), lane.alignments.size());

  BenchDb bench = OpenBenchDb("table2");
  Database* db = bench.db.get();
  sql::SqlEngine* engine = bench.engine.get();

  CheckOk(workflow::CreateGenomicsSchema(engine, {}), "create fs schema");
  CheckOk(workflow::ImportFastqAsFileStream(engine, "ShortReadFiles",
                                            lane.fastq_path, 42, 1),
          "filestream import");
  const uint64_t filestream_reads = db->filestream()->TotalBytes();

  CheckOk(workflow::CreateOneToOneSchema(engine, "_1to1"), "1:1 schema");
  CheckOk(workflow::LoadReadsOneToOne(db, "Read_1to1", lane.reads),
          "load 1:1 reads");
  CheckOk(workflow::LoadAlignmentsOneToOne(db, "Alignment_1to1",
                                           lane.alignments, lane.reads,
                                           lane.reference),
          "load 1:1 alignments");

  struct Variant {
    std::string label;
    std::string suffix;
    storage::Compression compression;
  };
  const std::vector<Variant> variants = {
      {"Normalized", "_n", storage::Compression::kNone},
      {"Norm+ROW", "_row", storage::Compression::kRow},
      {"Norm+PAGE", "_page", storage::Compression::kPage},
  };
  for (const Variant& v : variants) {
    workflow::SchemaOptions options;
    options.suffix = v.suffix;
    options.compression = v.compression;
    CheckOk(workflow::CreateGenomicsSchema(engine, options), "schema");
    CheckOk(workflow::LoadReads(db, "Read" + v.suffix, lane.reads, {1, 1, 1}),
            "load reads");
    CheckOk(workflow::LoadAlignments(db, "Alignment" + v.suffix,
                                     lane.alignments, {1, 1, 1}),
            "load alignments");
  }

  // The domain-specific sequence type of §5.1.2: reads stored as 2-bit
  // packed DnaSequence blobs (plus raw qualities).
  {
    Result<sql::QueryResult> created = bench.engine->Execute(R"sql(
        CREATE TABLE Read_packed (
          r_id BIGINT NOT NULL,
          r_e_id INT, r_sg_id INT, r_s_id INT,
          tile INT, x INT, y INT,
          packed_seq VARBINARY(300) NOT NULL,
          quality VARCHAR(300)
        ) WITH (DATA_COMPRESSION = ROW))sql");
    CheckOk(created.ok() ? Status::OK() : created.status(),
            "create packed table");
  }
  {
    auto* table = CheckOk(db->GetTable("Read_packed"), "packed table");
    int64_t id = 0;
    for (const genomics::ShortRead& r : lane.reads) {
      Result<genomics::ReadCoordinates> coords =
          genomics::ParseReadName(r.name);
      Row row;
      row.push_back(Value::Int64(id++));
      row.push_back(Value::Int32(1));
      row.push_back(Value::Int32(1));
      row.push_back(Value::Int32(1));
      row.push_back(Value::Int32(coords.ok() ? coords->tile : 0));
      row.push_back(Value::Int32(coords.ok() ? coords->x : 0));
      row.push_back(Value::Int32(coords.ok() ? coords->y : 0));
      row.push_back(
          Value::Blob(genomics::DnaSequence::FromText(r.sequence).ToBlob()));
      row.push_back(Value::String(r.quality));
      CheckOk(db->InsertRow(table, std::move(row)), "insert packed read");
    }
  }

  const uint64_t files_reads = FileBytes(lane.fastq_path);
  const uint64_t files_aligns = FileBytes(lane.alignments_path);

  TablePrinter table({"Data set", "Files", "FileStream", "1:1 import",
                      "Normalized", "Norm+ROW", "Norm+PAGE"});
  table.AddRow({
      "Short Reads (level-1)",
      HumanBytes(files_reads),
      BytesCell(filestream_reads, files_reads),
      BytesCell(TableBytes(db, "Read_1to1"), files_reads),
      BytesCell(TableBytes(db, "Read_n"), files_reads),
      BytesCell(TableBytes(db, "Read_row"), files_reads),
      BytesCell(TableBytes(db, "Read_page"), files_reads),
  });
  table.AddRow({
      "Alignments (level-2)",
      HumanBytes(files_aligns),
      "-",
      BytesCell(TableBytes(db, "Alignment_1to1"), files_aligns),
      BytesCell(TableBytes(db, "Alignment_n"), files_aligns),
      BytesCell(TableBytes(db, "Alignment_row"), files_aligns),
      BytesCell(TableBytes(db, "Alignment_page"), files_aligns),
  });
  printf("\n");
  table.Print();

  // Compression-effectiveness contrast and the bit-encoding claim.
  const uint64_t read_n = TableBytes(db, "Read_n");
  const uint64_t read_row = TableBytes(db, "Read_row");
  const uint64_t read_page = TableBytes(db, "Read_page");
  const uint64_t read_packed = TableBytes(db, "Read_packed");
  const uint64_t align_n = TableBytes(db, "Alignment_n");
  const uint64_t align_1to1 = TableBytes(db, "Alignment_1to1");
  printf("\nPAGE vs ROW on unique reads: %.1f%% further reduction "
         "(paper: compression much less effective than DGE)\n",
         100.0 * (1.0 - static_cast<double>(read_page) / read_row));
  printf("Normalized unique-read table (Read_n): %s vs %s uncompressed "
         "(redundant sequences stored once)\n",
         HumanBytes(read_n).c_str(), HumanBytes(read_row).c_str());
  printf("Normalized vs 1:1 alignments: %.1f%% smaller "
         "(paper: ~40%% savings)\n",
         100.0 * (1.0 - static_cast<double>(align_n) / align_1to1));
  printf("Bit-encoded sequence UDT (Read_packed): %s vs %s text "
         "(sequence payload ~1/4, paper §5.1.2)\n",
         HumanBytes(read_packed).c_str(), HumanBytes(read_row).c_str());
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
