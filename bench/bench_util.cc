#include "bench/bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "baseline/file_pipeline.h"
#include "genomics/register.h"
#include "storage/vfs.h"

namespace htg::bench {

double Scale() {
  const char* env = getenv("HTG_SCALE");
  if (env == nullptr) return 1.0;
  const double s = atof(env);
  return s > 0 ? s : 1.0;
}

uint64_t Scaled(uint64_t n, uint64_t min_value) {
  const uint64_t scaled = static_cast<uint64_t>(n * Scale());
  return scaled < min_value ? min_value : scaled;
}

Lane MakeLane(const LaneConfig& config) {
  std::filesystem::create_directories(config.work_dir);
  Lane lane;
  lane.reference = genomics::ReferenceGenome::Random(
      config.reference_bases, config.chromosomes, config.seed);

  genomics::SimulatorOptions sim_options;
  sim_options.seed = config.seed + 1;
  genomics::ReadSimulator sim(&lane.reference, sim_options);
  if (config.dge) {
    genomics::DgeOptions dge;
    dge.num_genes = config.dge_genes;
    lane.reads = sim.SimulateDge(config.num_reads, dge);
  } else {
    lane.reads = sim.SimulateResequencing(config.num_reads);
  }

  // Level-1 file (the sequencer output).
  lane.fastq_path = config.work_dir + "/lane.fastq";
  CheckOk(genomics::WriteFastqFile(lane.fastq_path, lane.reads),
          "write fastq");

  // Unique-tag analysis output file.
  lane.tags = genomics::BinUniqueReads(lane.reads);
  lane.tags_path = config.work_dir + "/unique_tags.txt";
  {
    FILE* f = fopen(lane.tags_path.c_str(), "wb");
    for (const genomics::TagCount& t : lane.tags) {
      fprintf(f, "%lld\t%lld\t%s\n", static_cast<long long>(t.rank),
              static_cast<long long>(t.frequency), t.sequence.c_str());
    }
    fclose(f);
  }

  // Level-2: align. For DGE the unit of alignment is the unique tag (the
  // paper aligns the binned tags); re-sequencing aligns every read.
  genomics::Aligner aligner(&lane.reference, {});
  if (config.dge) {
    std::vector<genomics::ShortRead> tag_reads;
    tag_reads.reserve(lane.tags.size());
    for (const genomics::TagCount& t : lane.tags) {
      tag_reads.push_back({"tag" + std::to_string(t.rank), t.sequence, ""});
    }
    lane.alignments = aligner.AlignBatch(tag_reads);
  } else {
    lane.alignments = aligner.AlignBatch(lane.reads);
  }
  lane.alignments_path = config.work_dir + "/alignments.txt";
  CheckOk(baseline::WriteAlignmentText(lane.alignments_path, lane.alignments,
                                       lane.reference),
          "write alignments");

  // Level-3: gene expression result file (DGE) / SNP-ish summary (reseq).
  lane.expression_path = config.work_dir + "/expression.txt";
  {
    FILE* f = fopen(lane.expression_path.c_str(), "wb");
    if (config.dge) {
      std::vector<genomics::AlignedTag> aligned;
      for (const genomics::Alignment& a : lane.alignments) {
        aligned.push_back({a.chromosome * 1'000'000 + a.position / 1000,
                           a.read_id,
                           lane.tags[a.read_id].frequency});
      }
      for (const genomics::GeneExpression& g :
           genomics::AggregateExpression(aligned)) {
        fprintf(f, "%lld\t%lld\t%lld\n", static_cast<long long>(g.gene_id),
                static_cast<long long>(g.total_frequency),
                static_cast<long long>(g.tag_count));
      }
    } else {
      fprintf(f, "alignments\t%zu\n", lane.alignments.size());
    }
    fclose(f);
  }
  return lane;
}

BenchDb OpenBenchDb(const std::string& name) {
  static int counter = 0;
  DatabaseOptions options;
  options.filestream_root = "/tmp/htgdb_bench_fs_" + name + "_" +
                            std::to_string(counter++);
  BenchDb out;
  out.db = CheckOk(Database::Open(name, options), "open database");
  CheckOk(out.db->filestream()->Clear(), "clear filestream store");
  CheckOk(genomics::RegisterGenomicsExtensions(out.db.get()),
          "register genomics extensions");
  out.engine = std::make_unique<sql::SqlEngine>(out.db.get());
  return out;
}

uint64_t FileBytes(const std::string& path) {
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      printf("%-*s  ", static_cast<int>(widths[i]),
             i < row.size() ? row[i].c_str() : "");
    }
    printf("\n");
  };
  print_row(headers_);
  std::vector<std::string> rule;
  for (size_t w : widths) rule.push_back(std::string(w, '-'));
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

std::string BytesCell(uint64_t bytes, uint64_t baseline) {
  if (baseline == 0) return HumanBytes(bytes);
  return StringPrintf("%s (%.2fx)", HumanBytes(bytes).c_str(),
                      static_cast<double>(bytes) / baseline);
}

void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

namespace {

// Order statistic over a copy of `reps` (nearest-rank on the sorted set);
// 0 when empty.
double RepsPercentile(std::vector<double> reps, double p) {
  if (reps.empty()) return 0;
  std::sort(reps.begin(), reps.end());
  const size_t idx = static_cast<size_t>(p * (reps.size() - 1) + 0.5);
  return reps[std::min(idx, reps.size() - 1)];
}

// Shortest round-trippable representation; %.9g keeps nanosecond-level
// timing precision without trailing noise.
std::string JsonNumber(double v) { return StringPrintf("%.9g", v); }

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::SetConfig(const std::string& key, const std::string& value) {
  config_[key] = "\"" + obs::JsonEscape(value) + "\"";
}

void BenchReport::SetConfig(const std::string& key, double value) {
  config_[key] = JsonNumber(value);
}

double BenchReport::MeasureSeconds(const std::string& result_name, int reps,
                                   const std::function<void()>& fn) {
  ResultEntry entry;
  entry.name = result_name;
  entry.unit = "seconds";
  entry.reps.reserve(reps);
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (int i = 0; i < reps; ++i) {
    Stopwatch timer;
    fn();
    entry.reps.push_back(timer.ElapsedSeconds());
  }
  entry.metrics_delta =
      obs::MetricsRegistry::Global().Snapshot().Delta(before);
  entry.has_metrics = true;
  const double median = RepsPercentile(entry.reps, 0.5);
  results_.push_back(std::move(entry));
  return median;
}

void BenchReport::AddTimings(const std::string& result_name,
                             std::vector<double> reps_seconds) {
  ResultEntry entry;
  entry.name = result_name;
  entry.unit = "seconds";
  entry.reps = std::move(reps_seconds);
  results_.push_back(std::move(entry));
}

void BenchReport::AddValue(const std::string& result_name, double value,
                           const std::string& unit) {
  ResultEntry entry;
  entry.name = result_name;
  entry.unit = unit;
  entry.value = value;
  entry.is_scalar = true;
  results_.push_back(std::move(entry));
}

std::string BenchReport::ToJson() const {
  std::string out = "{\n";
  out += StringPrintf("  \"schema_version\": %d,\n", kSchemaVersion);
  out += "  \"bench\": \"" + obs::JsonEscape(name_) + "\",\n";
  out += "  \"config\": {";
  bool first = true;
  for (const auto& [key, literal] : config_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + obs::JsonEscape(key) + "\": " + literal;
  }
  out += "},\n  \"results\": [\n";
  for (size_t i = 0; i < results_.size(); ++i) {
    const ResultEntry& r = results_[i];
    out += "    {\"name\": \"" + obs::JsonEscape(r.name) + "\", \"unit\": \"" +
           obs::JsonEscape(r.unit) + "\"";
    if (r.is_scalar) {
      out += ", \"value\": " + JsonNumber(r.value);
    } else {
      out += ", \"reps\": [";
      for (size_t j = 0; j < r.reps.size(); ++j) {
        if (j > 0) out += ", ";
        out += JsonNumber(r.reps[j]);
      }
      out += "], \"median\": " + JsonNumber(RepsPercentile(r.reps, 0.5));
      out += ", \"p90\": " + JsonNumber(RepsPercentile(r.reps, 0.9));
    }
    if (r.has_metrics) out += ", \"metrics\": " + r.metrics_delta.ToJson();
    out += "}";
    if (i + 1 < results_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

void BenchReport::Write() const {
  const char* env = getenv("HTG_BENCH_OUT");
  const std::string dir = (env != nullptr && *env != '\0') ? env : ".";
  storage::Vfs* vfs = storage::Vfs::Default();
  CheckOk(vfs->CreateDirs(dir), "create bench output dir");
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  CheckOk(storage::WriteFileAtomic(vfs, path, ToJson()), "write bench json");
  printf("\n[bench json] wrote %s\n", path.c_str());
}

}  // namespace htg::bench
