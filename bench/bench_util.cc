#include "bench/bench_util.h"

#include <cstdlib>
#include <filesystem>

#include "baseline/file_pipeline.h"
#include "genomics/register.h"

namespace htg::bench {

double Scale() {
  const char* env = getenv("HTG_SCALE");
  if (env == nullptr) return 1.0;
  const double s = atof(env);
  return s > 0 ? s : 1.0;
}

uint64_t Scaled(uint64_t n, uint64_t min_value) {
  const uint64_t scaled = static_cast<uint64_t>(n * Scale());
  return scaled < min_value ? min_value : scaled;
}

Lane MakeLane(const LaneConfig& config) {
  std::filesystem::create_directories(config.work_dir);
  Lane lane;
  lane.reference = genomics::ReferenceGenome::Random(
      config.reference_bases, config.chromosomes, config.seed);

  genomics::SimulatorOptions sim_options;
  sim_options.seed = config.seed + 1;
  genomics::ReadSimulator sim(&lane.reference, sim_options);
  if (config.dge) {
    genomics::DgeOptions dge;
    dge.num_genes = config.dge_genes;
    lane.reads = sim.SimulateDge(config.num_reads, dge);
  } else {
    lane.reads = sim.SimulateResequencing(config.num_reads);
  }

  // Level-1 file (the sequencer output).
  lane.fastq_path = config.work_dir + "/lane.fastq";
  CheckOk(genomics::WriteFastqFile(lane.fastq_path, lane.reads),
          "write fastq");

  // Unique-tag analysis output file.
  lane.tags = genomics::BinUniqueReads(lane.reads);
  lane.tags_path = config.work_dir + "/unique_tags.txt";
  {
    FILE* f = fopen(lane.tags_path.c_str(), "wb");
    for (const genomics::TagCount& t : lane.tags) {
      fprintf(f, "%lld\t%lld\t%s\n", static_cast<long long>(t.rank),
              static_cast<long long>(t.frequency), t.sequence.c_str());
    }
    fclose(f);
  }

  // Level-2: align. For DGE the unit of alignment is the unique tag (the
  // paper aligns the binned tags); re-sequencing aligns every read.
  genomics::Aligner aligner(&lane.reference, {});
  if (config.dge) {
    std::vector<genomics::ShortRead> tag_reads;
    tag_reads.reserve(lane.tags.size());
    for (const genomics::TagCount& t : lane.tags) {
      tag_reads.push_back({"tag" + std::to_string(t.rank), t.sequence, ""});
    }
    lane.alignments = aligner.AlignBatch(tag_reads);
  } else {
    lane.alignments = aligner.AlignBatch(lane.reads);
  }
  lane.alignments_path = config.work_dir + "/alignments.txt";
  CheckOk(baseline::WriteAlignmentText(lane.alignments_path, lane.alignments,
                                       lane.reference),
          "write alignments");

  // Level-3: gene expression result file (DGE) / SNP-ish summary (reseq).
  lane.expression_path = config.work_dir + "/expression.txt";
  {
    FILE* f = fopen(lane.expression_path.c_str(), "wb");
    if (config.dge) {
      std::vector<genomics::AlignedTag> aligned;
      for (const genomics::Alignment& a : lane.alignments) {
        aligned.push_back({a.chromosome * 1'000'000 + a.position / 1000,
                           a.read_id,
                           lane.tags[a.read_id].frequency});
      }
      for (const genomics::GeneExpression& g :
           genomics::AggregateExpression(aligned)) {
        fprintf(f, "%lld\t%lld\t%lld\n", static_cast<long long>(g.gene_id),
                static_cast<long long>(g.total_frequency),
                static_cast<long long>(g.tag_count));
      }
    } else {
      fprintf(f, "alignments\t%zu\n", lane.alignments.size());
    }
    fclose(f);
  }
  return lane;
}

BenchDb OpenBenchDb(const std::string& name) {
  static int counter = 0;
  DatabaseOptions options;
  options.filestream_root = "/tmp/htgdb_bench_fs_" + name + "_" +
                            std::to_string(counter++);
  BenchDb out;
  out.db = CheckOk(Database::Open(name, options), "open database");
  CheckOk(out.db->filestream()->Clear(), "clear filestream store");
  CheckOk(genomics::RegisterGenomicsExtensions(out.db.get()),
          "register genomics extensions");
  out.engine = std::make_unique<sql::SqlEngine>(out.db.get());
  return out;
}

uint64_t FileBytes(const std::string& path) {
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      printf("%-*s  ", static_cast<int>(widths[i]),
             i < row.size() ? row[i].c_str() : "");
    }
    printf("\n");
  };
  print_row(headers_);
  std::vector<std::string> rule;
  for (size_t w : widths) rule.push_back(std::string(w, '-'));
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

std::string BytesCell(uint64_t bytes, uint64_t baseline) {
  if (baseline == 0) return HumanBytes(bytes);
  return StringPrintf("%s (%.2fx)", HumanBytes(bytes).c_str(),
                      static_cast<double>(bytes) / baseline);
}

void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

}  // namespace htg::bench
