// Ablation: ReadChunk() size of the streaming file-wrapper TVF (§4.1).
// The paper's design point is that the TVF must read "larger chunks of
// data" rather than line-at-a-time; this sweep quantifies how chunk size
// buys down per-call overhead until it plateaus.

#include <filesystem>

#include "bench/bench_util.h"

namespace htg::bench {
namespace {

void Run() {
  const uint64_t num_reads = Scaled(150'000);
  printf("== Ablation: wrapper-TVF chunk size (SELECT COUNT(*)) ==\n");
  printf("FASTQ lane: %llu records, HTG_SCALE=%.2f\n\n",
         static_cast<unsigned long long>(num_reads), Scale());

  genomics::ReferenceGenome reference =
      genomics::ReferenceGenome::Random(Scaled(1'000'000), 4, 111);
  genomics::SimulatorOptions sim_options;
  sim_options.seed = 112;
  genomics::ReadSimulator sim(&reference, sim_options);
  std::vector<genomics::ShortRead> reads =
      sim.SimulateResequencing(num_reads);
  std::filesystem::create_directories("/tmp/htgdb_bench_chunk");
  const std::string fastq = "/tmp/htgdb_bench_chunk/lane.fastq";
  CheckOk(genomics::WriteFastqFile(fastq, reads), "write fastq");

  BenchDb bench = OpenBenchDb("chunk");
  const std::string blob = CheckOk(
      bench.db->filestream()->ImportFile(fastq, "lane.fastq"), "import");

  TablePrinter table({"chunk", "seconds", "vs 64 KiB"});
  double base = 0;
  std::vector<std::pair<int, double>> results;
  for (int chunk_kb : {1, 4, 16, 64, 256, 1024}) {
    const std::string sql = StringPrintf(
        "SELECT COUNT(*) FROM ReadFastqFile('%s', %d)", blob.c_str(),
        chunk_kb);
    // Warm once, then best of 3.
    CheckOk(bench.engine->Execute(sql).ok() ? Status::OK()
                                            : Status::Internal("query"),
            "warm");
    double best = 1e30;
    for (int i = 0; i < 3; ++i) {
      Stopwatch timer;
      Result<sql::QueryResult> result = bench.engine->Execute(sql);
      CheckOk(result.ok() ? Status::OK() : result.status(), "query");
      if (result->rows[0][0].AsInt64() !=
          static_cast<int64_t>(reads.size())) {
        fprintf(stderr, "WRONG COUNT at chunk=%d\n", chunk_kb);
        exit(1);
      }
      best = std::min(best, timer.ElapsedSeconds());
    }
    if (chunk_kb == 64) base = best;
    results.emplace_back(chunk_kb, best);
  }
  for (const auto& [chunk_kb, seconds] : results) {
    table.AddRow({StringPrintf("%d KiB", chunk_kb),
                  StringPrintf("%.3f", seconds),
                  base > 0 ? StringPrintf("%.2fx", seconds / base) : "-"});
  }
  table.Print();
  printf("\nShape: tiny chunks pay per-call overhead; gains plateau once "
         "chunks amortize it (the §4.1 design rationale).\n");
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
