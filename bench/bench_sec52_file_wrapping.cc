// Reproduces the §5.2 file-wrapping micro-study: `SELECT COUNT(*)` over a
// short-reads FASTA stored as a FileStream BLOB, via five access paths:
//
//   paper                               | this repro
//   ------------------------------------+---------------------------------
//   command-line program (C#)   ~5 s    | direct chunked scan of the file
//   T-SQL stored procedure   minutes    | interpreted byte-at-a-time scan
//   CLR SP with StreamReader    21 s    | line-buffered reader (small buf)
//   CLR SP with chunking         7 s    | chunk parser, no row conversion
//   CLR TVF with chunking       14 s    | SQL COUNT(*) over the wrapper TVF
//
// Expected shape: command-line ≈ chunked SP < chunked TVF < StreamReader
// ≪ interpreted SP, with the TVF's extra cost being the iterator contract
// plus the FillRow-style value conversion (the bottleneck §5.2 names).

#include <cstring>
#include <filesystem>

#include "bench/bench_util.h"
#include "genomics/file_wrapper.h"
#include "workflow/loaders.h"
#include "workflow/schema.h"

namespace htg::bench {
namespace {

// Paper: 5,028,052 lines of short-read data (FASTA: name line + seq line).
// Default-scale: ~400k lines.
constexpr uint64_t kDefaultReads = 200'000;

uint64_t CommandLineScan(const std::string& path) {
  // A standalone tool: big buffered reads, count '>' records.
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::vector<char> buf(1 << 20);
  uint64_t records = 0;
  size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), f)) > 0) {
    for (size_t i = 0; i < n; ++i) {
      if (buf[i] == '>') ++records;
    }
  }
  fclose(f);
  return records;
}

// The "T-SQL stored procedure" analogue: an interpreted row-at-a-time
// cursor that fetches the BLOB one byte per GetBytes call and builds a
// Value per line — the per-operation interpretation overhead that made
// the paper's T-SQL variant take minutes.
uint64_t InterpretedScan(storage::FileStreamReader* reader) {
  uint64_t records = 0;
  uint64_t offset = 0;
  std::string line;
  char c;
  for (;;) {
    Result<size_t> n = reader->GetBytes(offset, &c, 1);
    if (!n.ok() || *n == 0) break;
    ++offset;
    if (c == '\n') {
      // Interpreted per-row work: box the line into a Value and test it.
      Value v = Value::String(line);
      if (!v.AsString().empty() && v.AsString()[0] == '>') ++records;
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty() && line[0] == '>') ++records;
  return records;
}

// The "CLR StreamReader" analogue: line-oriented reads through a modest
// (4 KiB) buffer with a per-line string allocation.
uint64_t StreamReaderScan(storage::FileStreamReader* reader) {
  uint64_t records = 0;
  uint64_t offset = 0;
  std::string buffer(4096, '\0');
  std::string line;
  for (;;) {
    Result<size_t> n = reader->GetBytes(offset, buffer.data(), buffer.size());
    if (!n.ok() || *n == 0) break;
    offset += *n;
    for (size_t i = 0; i < *n; ++i) {
      if (buffer[i] == '\n') {
        std::string materialized = line;  // ReadLine() allocates
        if (!materialized.empty() && materialized[0] == '>') ++records;
        line.clear();
      } else {
        line.push_back(buffer[i]);
      }
    }
  }
  if (!line.empty() && line[0] == '>') ++records;
  return records;
}

// The "CLR SP with chunking" analogue: the Fig. 5 chunk pager and parser,
// but counting records directly without converting them to rows.
uint64_t ChunkedScan(storage::FileStreamReader* reader) {
  genomics::FastaChunkParser parser;
  std::string buffer(genomics::kDefaultChunkBytes, '\0');
  size_t filled = 0;
  size_t pos = 0;
  uint64_t offset = 0;
  uint64_t records = 0;
  genomics::ShortRead record;
  bool at_eof = false;
  for (;;) {
    while (parser.ParseRecord(buffer.data(), filled, &pos, &record)) {
      ++records;
    }
    if (at_eof) break;
    const size_t tail = filled - pos;
    if (tail > 0 && pos > 0) memmove(buffer.data(), buffer.data() + pos, tail);
    pos = 0;
    filled = tail;
    Result<size_t> n =
        reader->GetBytes(offset, buffer.data() + filled,
                         buffer.size() - filled);
    if (!n.ok()) break;
    if (*n == 0) {
      at_eof = true;
      parser.set_at_eof(true);
      continue;
    }
    offset += *n;
    filled += *n;
  }
  return records;
}

void Run() {
  const uint64_t num_reads = Scaled(kDefaultReads);
  printf("== §5.2: file wrapping performance (SELECT COUNT(*) FROM file) ==\n");
  printf("FASTA short-read file: %llu records (%llu lines), HTG_SCALE=%.2f\n\n",
         static_cast<unsigned long long>(num_reads),
         static_cast<unsigned long long>(num_reads * 2), Scale());

  // Build the FASTA lane file.
  LaneConfig config;
  config.dge = false;
  config.num_reads = num_reads;
  config.reference_bases = Scaled(1'000'000);
  config.chromosomes = 4;
  config.work_dir = "/tmp/htgdb_bench_sec52";
  genomics::ReferenceGenome reference = genomics::ReferenceGenome::Random(
      config.reference_bases, config.chromosomes, 77);
  genomics::SimulatorOptions sim_options;
  sim_options.seed = 78;
  genomics::ReadSimulator sim(&reference, sim_options);
  std::vector<genomics::ShortRead> reads =
      sim.SimulateResequencing(num_reads);
  const std::string fasta = config.work_dir + "/lane.fasta";
  std::filesystem::create_directories(config.work_dir);
  CheckOk(genomics::WriteFastaFile(fasta, reads, 1000), "write fasta");
  printf("file size: %s\n\n", HumanBytes(FileBytes(fasta)).c_str());

  BenchDb bench = OpenBenchDb("sec52");
  Database* db = bench.db.get();

  // Put the file under FileStream control (hybrid design).
  const std::string blob = CheckOk(
      db->filestream()->ImportFile(fasta, "lane.fasta"), "import blob");

  TablePrinter table({"Access method", "records", "seconds", "vs cmdline"});
  double cmdline_seconds = 0;
  auto add = [&](const std::string& label, uint64_t records, double seconds) {
    if (cmdline_seconds == 0) cmdline_seconds = seconds;
    table.AddRow({label, std::to_string(records),
                  StringPrintf("%.3f", seconds),
                  StringPrintf("%.1fx", seconds / cmdline_seconds)});
  };

  {
    Stopwatch timer;
    const uint64_t records = CommandLineScan(blob);
    add("Command line program", records, timer.ElapsedSeconds());
  }
  {
    auto reader = CheckOk(db->filestream()->OpenStream(blob), "open");
    Stopwatch timer;
    const uint64_t records = InterpretedScan(reader.get());
    add("T-SQL-style interpreted SP", records, timer.ElapsedSeconds());
  }
  {
    auto reader = CheckOk(db->filestream()->OpenStream(blob), "open");
    Stopwatch timer;
    const uint64_t records = StreamReaderScan(reader.get());
    add("CLR SP with StreamReader", records, timer.ElapsedSeconds());
  }
  {
    auto reader = CheckOk(db->filestream()->OpenStream(blob), "open");
    Stopwatch timer;
    const uint64_t records = ChunkedScan(reader.get());
    add("CLR SP with chunking", records, timer.ElapsedSeconds());
  }
  {
    // Full SQL path: TVF iterator + FillRow conversion + COUNT aggregate.
    Stopwatch timer;
    Result<sql::QueryResult> result = bench.engine->Execute(
        "SELECT COUNT(*) FROM ReadFastaFile('" + blob + "')");
    CheckOk(result.ok() ? Status::OK() : result.status(), "tvf count");
    add("CLR TVF with chunking (SQL)",
        static_cast<uint64_t>(result->rows[0][0].AsInt64()),
        timer.ElapsedSeconds());
  }
  table.Print();
  printf(
      "\nPaper shape check: cmdline ~ chunked SP < chunked TVF < "
      "StreamReader << interpreted SP.\n"
      "The TVF-vs-SP gap is the iterator contract + per-row FillRow value "
      "conversion (§5.2's stated bottleneck).\n");
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
