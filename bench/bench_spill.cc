// Memory-governance sweep: the same sort / aggregate / join workload
// under an unlimited budget and under a budget small enough to force
// multi-run spilling. The interesting numbers are the degradation factor
// (spill vs in-memory wall clock) and the spill traffic (runs, bytes) —
// the cost of finishing instead of dying when a genomics working set
// outgrows RAM.

#include <algorithm>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"

namespace htg::bench {
namespace {

constexpr int64_t kTinyBudget = 64 * 1024;

struct SpillDb {
  std::unique_ptr<Database> db;
  std::unique_ptr<sql::SqlEngine> engine;
};

SpillDb OpenSpillDb(const std::string& tag, int64_t query_mem_bytes,
                    uint64_t rows, uint64_t groups) {
  DatabaseOptions options;
  options.filestream_root = "/tmp/htgdb_bench_spill_" + tag;
  std::filesystem::remove_all(options.filestream_root);
  options.query_mem_bytes = query_mem_bytes;
  SpillDb out;
  out.db = CheckOk(Database::Open("spill_" + tag, options), "open");
  out.engine = std::make_unique<sql::SqlEngine>(out.db.get());
  CheckOk(out.engine->Execute("CREATE TABLE t (k INT, v BIGINT, s "
                              "VARCHAR(64))")
                  .ok()
              ? Status::OK()
              : Status::Internal("ddl"),
          "create t");
  CheckOk(out.engine->Execute("CREATE TABLE u (k INT, w BIGINT)").ok()
              ? Status::OK()
              : Status::Internal("ddl"),
          "create u");
  catalog::TableDef* t = CheckOk(out.db->GetTable("t"), "table t");
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (uint64_t i = 0; i < rows; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::string payload(32, 'a');
    for (char& c : payload) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      c = static_cast<char>('a' + (x >> 59) % 26);
    }
    CheckOk(out.db->InsertRow(
                t, Row{Value::Int32(static_cast<int32_t>(i % groups)),
                       Value::Int64(static_cast<int64_t>(i)),
                       Value::String(std::move(payload))}),
            "insert t");
  }
  catalog::TableDef* u = CheckOk(out.db->GetTable("u"), "table u");
  for (uint64_t i = 0; i < groups * 4; ++i) {
    CheckOk(out.db->InsertRow(
                u, Row{Value::Int32(static_cast<int32_t>(i % groups)),
                       Value::Int64(static_cast<int64_t>(i) * 10)}),
            "insert u");
  }
  return out;
}

uint64_t CounterValue(const obs::MetricsSnapshot& snap, const char* name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

void Run() {
  const uint64_t rows = Scaled(240'000, 4000);
  const uint64_t groups = std::max<uint64_t>(rows / 24, 100);

  printf("== Memory governance: budget sweep (spill degradation) ==\n");
  printf("HTG_SCALE=%.2f  rows=%llu  groups=%llu  tiny budget=%lld KiB\n\n",
         Scale(), static_cast<unsigned long long>(rows),
         static_cast<unsigned long long>(groups),
         static_cast<long long>(kTinyBudget / 1024));

  BenchReport report("spill");
  report.SetConfig("scale", Scale());
  report.SetConfig("rows", static_cast<double>(rows));
  report.SetConfig("groups", static_cast<double>(groups));
  report.SetConfig("tiny_budget_bytes", static_cast<double>(kTinyBudget));

  const std::string sort_sql = "SELECT k, v, s FROM t ORDER BY v DESC";
  const std::string agg_sql =
      "SELECT k, COUNT(*), SUM(v), MIN(s) FROM t GROUP BY k";
  const std::string join_sql =
      "SELECT t.v, u.w FROM t JOIN u ON t.k = u.k WHERE u.w < 1000";

  struct Case {
    const char* name;
    const std::string* sql;
  };
  const Case cases[] = {{"sort", &sort_sql}, {"agg", &agg_sql},
                        {"join", &join_sql}};

  TablePrinter table({"query", "in-memory", "spilling", "degradation",
                      "spill runs", "spill MiB"});

  SpillDb mem = OpenSpillDb("mem", /*query_mem_bytes=*/0, rows, groups);
  SpillDb tiny = OpenSpillDb("tiny", kTinyBudget, rows, groups);

  for (const Case& c : cases) {
    size_t mem_rows = 0;
    const double mem_s = report.MeasureSeconds(
        std::string(c.name) + "_inmemory", 3, [&] {
          mem_rows =
              CheckOk(mem.engine->Execute(*c.sql), "in-memory").rows.size();
        });
    const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
    size_t tiny_rows = 0;
    const double tiny_s = report.MeasureSeconds(
        std::string(c.name) + "_spill", 3, [&] {
          tiny_rows =
              CheckOk(tiny.engine->Execute(*c.sql), "spilling").rows.size();
        });
    const obs::MetricsSnapshot delta =
        obs::MetricsRegistry::Global().Snapshot().Delta(before);
    if (mem_rows != tiny_rows) {
      fprintf(stderr, "FATAL %s: spilling changed the result (%zu vs %zu)\n",
              c.name, mem_rows, tiny_rows);
      exit(1);
    }
    const uint64_t runs = CounterValue(delta, "exec.spill.runs");
    const uint64_t bytes = CounterValue(delta, "exec.spill.bytes");
    if (runs == 0) {
      fprintf(stderr, "FATAL %s: tiny budget did not spill\n", c.name);
      exit(1);
    }
    // Per-statement traffic: the delta spans all 3 reps.
    report.AddValue(std::string(c.name) + "_spill_runs",
                    static_cast<double>(runs) / 3.0, "runs");
    report.AddValue(std::string(c.name) + "_spill_bytes",
                    static_cast<double>(bytes) / 3.0, "bytes");
    table.AddRow({c.name, StringPrintf("%.3f s", mem_s),
                  StringPrintf("%.3f s", tiny_s),
                  StringPrintf("%.2fx", tiny_s / mem_s),
                  StringPrintf("%.1f", static_cast<double>(runs) / 3.0),
                  StringPrintf("%.2f", static_cast<double>(bytes) / 3.0 /
                                           (1024.0 * 1024.0))});
  }

  table.Print();
  printf("\nShape: spilling trades wall clock for a bounded footprint — "
         "every query answers identically under a %lld KiB budget, the "
         "degradation factor is the price of the disk round trip.\n",
         static_cast<long long>(kTinyBudget / 1024));
  report.Write();
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
