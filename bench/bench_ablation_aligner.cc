// Ablation: aligner seed length (the MAQ-style index's central knob).
// Shorter seeds tolerate early-read errors (higher sensitivity) but
// explode candidate lists (slower); longer seeds are fast but miss reads
// whose errors land in the seed. Also reports index size.

#include "bench/bench_util.h"

namespace htg::bench {
namespace {

void Run() {
  const uint64_t ref_bases = Scaled(1'000'000);
  const uint64_t num_reads = Scaled(20'000);
  printf("== Ablation: aligner seed length ==\n");
  printf("reference %llu bases, %llu reads (1%% base error), "
         "HTG_SCALE=%.2f\n\n",
         static_cast<unsigned long long>(ref_bases),
         static_cast<unsigned long long>(num_reads), Scale());

  genomics::ReferenceGenome reference =
      genomics::ReferenceGenome::Random(ref_bases, 4, 141);
  genomics::SimulatorOptions sim_options;
  sim_options.seed = 142;
  sim_options.base_error_rate = 0.01;
  sim_options.error_rate_slope = 0.01;
  genomics::ReadSimulator sim(&reference, sim_options);
  std::vector<genomics::SimulatedOrigin> origins;
  std::vector<genomics::ShortRead> reads =
      sim.SimulateResequencing(num_reads, &origins);

  TablePrinter table({"seed", "index entries", "build s", "align s",
                      "reads/s", "aligned %", "correct %"});
  for (int seed_length : {12, 16, 20, 24, 28}) {
    genomics::AlignerOptions options;
    options.seed_length = seed_length;
    Stopwatch build_timer;
    genomics::Aligner aligner(&reference, options);
    const double build_seconds = build_timer.ElapsedSeconds();

    Stopwatch align_timer;
    uint64_t aligned = 0;
    uint64_t correct = 0;
    for (size_t i = 0; i < reads.size(); ++i) {
      Result<genomics::Alignment> a = aligner.AlignRead(reads[i]);
      if (!a.ok()) continue;
      ++aligned;
      if (a->chromosome == origins[i].chromosome &&
          a->position == origins[i].position) {
        ++correct;
      }
    }
    const double align_seconds = align_timer.ElapsedSeconds();
    table.AddRow({std::to_string(seed_length),
                  std::to_string(aligner.index_size()),
                  StringPrintf("%.2f", build_seconds),
                  StringPrintf("%.2f", align_seconds),
                  StringPrintf("%.0f", reads.size() / align_seconds),
                  StringPrintf("%.1f%%", 100.0 * aligned / reads.size()),
                  StringPrintf("%.1f%%", 100.0 * correct / reads.size())});
  }
  table.Print();
  printf("\nShape: sensitivity falls as the seed grows past the error-free "
         "prefix of typical reads; throughput rises until candidate lists "
         "stop shrinking.\n");
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
