// Reproduces Figure 9: the parallel query execution plan for the
// unique-read binning query (Query 1), plus a degree-of-parallelism sweep
// showing where the parallelism comes from.
//
// The paper's plan: parallel table scan → repartition streams → hash match
// (partial/final aggregate) → gather streams → sort → sequence project
// (ROW_NUMBER). Our planner produces the same architecture: a morsel-driven
// scan (workers steal page-range morsels from a shared counter) with
// per-morsel filters feeding partial hash aggregates that merge in a
// hash-partitioned parallel gather, then sort + sequence project on top.

#include <thread>

#include "bench/bench_util.h"
#include "workflow/loaders.h"
#include "workflow/schema.h"

namespace htg::bench {
namespace {

const char* kQuery1 =
    "SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC) AS rank, "
    "COUNT(*) AS freq, short_read_seq "
    "FROM Read "
    "WHERE CHARINDEX('N', short_read_seq) = 0 "
    "GROUP BY short_read_seq";

void Run() {
  LaneConfig config;
  config.dge = true;
  config.num_reads = Scaled(250'000);
  config.dge_genes = static_cast<int>(Scaled(20'000));
  config.work_dir = "/tmp/htgdb_bench_fig9";
  printf("== Fig. 9: parallel plan for unique-read binning (Query 1) ==\n");
  printf("DGE lane: %llu reads, HTG_SCALE=%.2f\n\n",
         static_cast<unsigned long long>(config.num_reads), Scale());
  BenchReport report("fig9_parallel_plan");
  report.SetConfig("scale", Scale());
  report.SetConfig("reads", static_cast<double>(config.num_reads));
  Lane lane = MakeLane(config);

  BenchDb bench = OpenBenchDb("fig9");
  CheckOk(workflow::CreateGenomicsSchema(bench.engine.get(), {}),
          "create schema");
  CheckOk(workflow::LoadReads(bench.db.get(), "Read", lane.reads, {1, 1, 1}),
          "load reads");

  bench.db->set_max_dop(1);
  printf("--- serial plan (MAXDOP 1) ---\n%s\n",
         CheckOk(bench.engine->Explain(kQuery1), "explain serial").c_str());

  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  bench.db->set_max_dop(std::max(4, hw));
  printf("--- parallel plan (MAXDOP %d) ---\n%s\n", std::max(4, hw),
         CheckOk(bench.engine->Explain(kQuery1), "explain parallel").c_str());

  printf("--- DOP sweep ---\n");
  // Interleaved repetitions: each rep runs every DOP once before the next
  // rep starts, so drift over the run (thermal, page cache, allocator
  // state) spreads evenly across configurations instead of biasing
  // whichever DOP happened to run last. 7 reps per DOP keep the medians
  // stable enough for the monotonicity gate in bench_compare.py.
  const std::vector<int> dops = {1, 2, 4, std::max(8, hw)};
  constexpr int kReps = 7;
  std::vector<std::vector<double>> reps(dops.size());
  for (int dop : dops) {  // warm each configuration once
    bench.db->set_max_dop(dop);
    CheckOk(bench.engine->Execute(kQuery1).status(), "warmup");
  }
  for (int run = 0; run < kReps; ++run) {
    for (size_t i = 0; i < dops.size(); ++i) {
      bench.db->set_max_dop(dops[i]);
      Stopwatch timer;
      Result<sql::QueryResult> result = bench.engine->Execute(kQuery1);
      CheckOk(result.ok() ? Status::OK() : result.status(), "query");
      reps[i].push_back(timer.ElapsedSeconds());
    }
  }
  TablePrinter table({"DOP", "seconds", "speedup vs DOP=1"});
  double base_seconds = 0;
  for (size_t i = 0; i < dops.size(); ++i) {
    double best = 1e30;
    for (double s : reps[i]) best = std::min(best, s);
    report.AddTimings(StringPrintf("query1_dop%d", dops[i]),
                      std::move(reps[i]));
    if (dops[i] == 1) base_seconds = best;
    table.AddRow({std::to_string(dops[i]), StringPrintf("%.3f", best),
                  StringPrintf("%.2fx", base_seconds / best)});
  }
  table.Print();
  printf("\nPaper shape check: the parallel plan shows partitioned scans, "
         "partial/final hash aggregation, gather, sort, sequence project; "
         "runtime improves with DOP when cores are available.\n");
  if (hw == 1) {
    printf("NOTE: this host has 1 hardware thread; DOP>1 exercises the "
           "parallel plan without wall-clock speedup.\n");
  }
  report.Write();
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
