#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "genomics/aligner.h"
#include "genomics/formats.h"
#include "genomics/gene_expression.h"
#include "genomics/reference.h"
#include "genomics/simulator.h"
#include "sql/engine.h"

namespace htg::bench {

// Global scale knob: every workload size multiplies by HTG_SCALE (default
// 1.0). The paper's absolute sizes (490 MB lanes, 6.2 M reads) correspond
// to roughly HTG_SCALE=40; defaults keep each bench in seconds.
double Scale();

// n scaled and clamped to at least `min_value`.
uint64_t Scaled(uint64_t n, uint64_t min_value = 1);

// A simulated flowcell lane with every artifact the storage studies need.
struct Lane {
  genomics::ReferenceGenome reference;
  std::vector<genomics::ShortRead> reads;
  std::vector<genomics::TagCount> tags;          // binned unique reads
  std::vector<genomics::Alignment> alignments;   // aligned reads or tags
  // On-disk file-centric artifacts ("Files" column).
  std::string fastq_path;
  std::string tags_path;
  std::string alignments_path;
  std::string expression_path;
};

struct LaneConfig {
  uint64_t reference_bases = 2'000'000;
  int chromosomes = 8;
  uint64_t num_reads = 60'000;
  bool dge = true;  // false = re-sequencing (1000 Genomes regime)
  int dge_genes = 4000;
  uint64_t seed = 1234;
  std::string work_dir = "/tmp/htgdb_bench";
};

// Simulates a lane, bins tags, aligns (tags for DGE, every read for
// re-sequencing), and writes the four file-centric artifacts.
Lane MakeLane(const LaneConfig& config);

// Fresh database + engine with genomics extensions registered.
struct BenchDb {
  std::unique_ptr<Database> db;
  std::unique_ptr<sql::SqlEngine> engine;
};
BenchDb OpenBenchDb(const std::string& name);

// File size helper (0 if missing).
uint64_t FileBytes(const std::string& path);

// Simple aligned table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "12.3 KiB (0.95x)" relative to a baseline byte count.
std::string BytesCell(uint64_t bytes, uint64_t baseline);

// Machine-readable bench output: accumulates named results and writes a
// schema-versioned BENCH_<name>.json next to the human-readable tables, so
// CI (tools/bench_compare.py) can diff runs against checked-in baselines.
//
// Timing results carry every repetition plus a metrics-registry delta
// spanning the timed region; scalar results (byte counts, row counts)
// carry a single value and unit.
class BenchReport {
 public:
  // JSON schema_version; bump when the layout changes incompatibly.
  static constexpr int kSchemaVersion = 1;

  explicit BenchReport(std::string name);

  // Config keys describe the workload (scale, rows, dop) so a comparison
  // across mismatched configs can be rejected.
  void SetConfig(const std::string& key, const std::string& value);
  void SetConfig(const std::string& key, double value);

  // Times fn() `reps` times and records per-rep seconds plus the metrics
  // snapshot delta across all reps. Returns the median seconds.
  double MeasureSeconds(const std::string& result_name, int reps,
                        const std::function<void()>& fn);

  // Records externally measured repetition timings (seconds).
  void AddTimings(const std::string& result_name,
                  std::vector<double> reps_seconds);

  // Records a scalar measurement (e.g. unit "bytes" or "rows").
  void AddValue(const std::string& result_name, double value,
                const std::string& unit);

  std::string ToJson() const;

  // Writes BENCH_<name>.json into $HTG_BENCH_OUT (default: current
  // directory) and prints the path. Aborts the bench on I/O failure.
  void Write() const;

 private:
  struct ResultEntry {
    std::string name;
    std::string unit;
    std::vector<double> reps;    // timing results
    double value = 0;            // scalar results
    bool is_scalar = false;
    obs::MetricsSnapshot metrics_delta;
    bool has_metrics = false;
  };

  std::string name_;
  std::map<std::string, std::string> config_;  // values are JSON literals
  std::vector<ResultEntry> results_;
};

// Aborts the bench with a message on error status.
void CheckOk(const Status& status, const char* what);

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, result.status().ToString().c_str());
    exit(1);
  }
  return std::move(*result);
}

}  // namespace htg::bench

