// Reproduces Figure 10 / §5.3.3: consensus calling (the paper's Query 3)
// over clustered Alignment ⋈ Read.
//
// Three measurements:
//  1. Merge-join throughput off the clustered indexes (the paper: ~7 s
//     with a warm buffer pool ≈ 1.6 M alignments/s on their box).
//  2. The conceptually clean pivot plan — CROSS APPLY PivotAlignment,
//     GROUP BY position with the CallBase UDA, AssembleSequence per
//     chromosome — which materializes a huge intermediate (impractical,
//     as the paper observes).
//  3. The proposed sliding-window AssembleConsensus UDA over alignments
//     scanned in position order off the right physical design: no pivot,
//     no blocking, state bounded by read length.
//
// Expected shape: sliding window ≫ pivot plan; both produce the same
// consensus; merge join streams at millions of alignments per second.

#include "bench/bench_util.h"
#include "genomics/consensus.h"
#include "genomics/nucleotide.h"
#include "workflow/loaders.h"
#include "workflow/schema.h"

namespace htg::bench {
namespace {

void Run() {
  LaneConfig config;
  config.dge = false;
  config.chromosomes = 2;
  config.reference_bases = Scaled(200'000);
  const int coverage = 12;
  config.num_reads = config.reference_bases * coverage / 36;
  config.work_dir = "/tmp/htgdb_bench_fig10";
  printf("== Fig. 10 / §5.3.3: consensus calling (Query 3) ==\n");
  printf("re-sequencing lane: %llu reads at ~%dx over %llu bases, "
         "HTG_SCALE=%.2f\n\n",
         static_cast<unsigned long long>(config.num_reads), coverage,
         static_cast<unsigned long long>(config.reference_bases), Scale());
  Lane lane = MakeLane(config);
  printf("alignments: %zu\n\n", lane.alignments.size());

  BenchDb bench = OpenBenchDb("fig10");
  Database* db = bench.db.get();
  sql::SqlEngine* engine = bench.engine.get();

  // Clustered-by-join-key schema: Read on r_id, Alignment on a_r_id.
  workflow::SchemaOptions schema_options;
  schema_options.clustered_join_keys = true;
  CheckOk(workflow::CreateGenomicsSchema(engine, schema_options), "schema");
  CheckOk(workflow::LoadReads(db, "Read", lane.reads, {1, 1, 1}),
          "load reads");
  CheckOk(workflow::LoadAlignments(db, "Alignment", lane.alignments,
                                   {1, 1, 1}),
          "load alignments");

  // --- 1. merge join throughput --------------------------------------
  {
    const std::string join_sql =
        "SELECT COUNT(*) FROM Alignment JOIN Read ON a_r_id = r_id";
    const std::string plan = CheckOk(engine->Explain(join_sql), "explain");
    printf("--- join plan (clustered keys) ---\n%s\n", plan.c_str());
    // Warm, then time.
    CheckOk(engine->Execute(join_sql).ok() ? Status::OK()
                                           : Status::Internal("join"),
            "warm join");
    Stopwatch timer;
    Result<sql::QueryResult> result = engine->Execute(join_sql);
    CheckOk(result.ok() ? Status::OK() : result.status(), "join");
    const double seconds = timer.ElapsedSeconds();
    printf("merge join: %lld joined alignments in %.3f s = %.2f M "
           "alignments/s (paper: ~1.6 M/s)\n\n",
           static_cast<long long>(result->rows[0][0].AsInt64()), seconds,
           result->rows[0][0].AsInt64() / seconds / 1e6);
  }

  // --- 2. pivot-based Query 3 -----------------------------------------
  // Reverse-strand reads contribute their reverse complement (REVCOMP /
  // REVERSE scalar UDFs inside the CROSS APPLY arguments).
  const std::string pivot_sql = R"sql(
      SELECT a_g_id, AssembleSequence(pos, b) AS consensus
        FROM (SELECT a_g_id, pa.pos AS pos, CallBase(base, qual) AS b
                FROM Alignment JOIN Read ON a_r_id = r_id
               CROSS APPLY PivotAlignment(
                   a_pos,
                   CASE WHEN a_strand = 1 THEN REVCOMP(short_read_seq)
                        ELSE short_read_seq END,
                   CASE WHEN a_strand = 1 THEN REVERSE(quality)
                        ELSE quality END) AS pa
               GROUP BY a_g_id, pa.pos) t
       GROUP BY a_g_id)sql";
  // Count the pivoted intermediate first (the plan's pain point).
  Result<sql::QueryResult> pivot_count = engine->Execute(R"sql(
      SELECT COUNT(*) FROM Alignment JOIN Read ON a_r_id = r_id
       CROSS APPLY PivotAlignment(a_pos, short_read_seq, quality) AS pa)sql");
  CheckOk(pivot_count.ok() ? Status::OK() : pivot_count.status(),
          "pivot count");
  printf("--- pivot plan (conceptually clean Query 3) ---\n");
  printf("pivoted intermediate: %lld (position, base, qual) rows\n",
         static_cast<long long>(pivot_count->rows[0][0].AsInt64()));
  Stopwatch pivot_timer;
  Result<sql::QueryResult> pivot = engine->Execute(pivot_sql);
  CheckOk(pivot.ok() ? Status::OK() : pivot.status(), "pivot query");
  const double pivot_seconds = pivot_timer.ElapsedSeconds();
  printf("pivot + group + CallBase + AssembleSequence: %.3f s\n\n",
         pivot_seconds);

  // --- 3. sliding-window AssembleConsensus ----------------------------
  // The right physical design: alignments clustered by (chromosome,
  // position) with the oriented sequence denormalized, so the UDA
  // streams them in order without a sort.
  {
    Result<sql::QueryResult> created = engine->Execute(R"sql(
        CREATE TABLE AlignmentPos (
          a_g_id INT NOT NULL,
          a_pos BIGINT NOT NULL,
          seq VARCHAR(300) NOT NULL,
          qual VARCHAR(300)
        ) CLUSTER BY (a_g_id, a_pos))sql");
    CheckOk(created.ok() ? Status::OK() : created.status(),
            "create AlignmentPos");
    auto* table = CheckOk(db->GetTable("AlignmentPos"), "AlignmentPos");
    for (const genomics::Alignment& a : lane.alignments) {
      const genomics::ShortRead& r = lane.reads[a.read_id];
      std::string seq = r.sequence;
      std::string qual = r.quality;
      if (a.reverse_strand) {
        seq = genomics::ReverseComplement(seq);
        std::reverse(qual.begin(), qual.end());
      }
      CheckOk(db->InsertRow(table, Row{Value::Int32(a.chromosome),
                                       Value::Int64(a.position),
                                       Value::String(std::move(seq)),
                                       Value::String(std::move(qual))}),
              "insert AlignmentPos");
    }
  }
  const std::string window_sql =
      "SELECT a_g_id, AssembleConsensus(a_pos, seq, qual) AS consensus "
      "FROM AlignmentPos GROUP BY a_g_id";
  printf("--- sliding-window plan (the paper's optimization) ---\n%s",
         CheckOk(engine->Explain(window_sql), "explain window").c_str());
  Stopwatch window_timer;
  Result<sql::QueryResult> window = engine->Execute(window_sql);
  CheckOk(window.ok() ? Status::OK() : window.status(), "window query");
  const double window_seconds = window_timer.ElapsedSeconds();
  printf("AssembleConsensus over ordered clustered scan: %.3f s "
         "(%.1fx faster than the pivot plan)\n\n",
         window_seconds, pivot_seconds / window_seconds);

  // --- validation ------------------------------------------------------
  // Both SQL plans must call the same consensus; compare against the
  // reference to count SNP-like residual differences.
  auto by_chromosome = [](const sql::QueryResult& r) {
    std::map<int64_t, std::string> out;
    for (const Row& row : r.rows) out[row[0].AsInt64()] = row[1].AsString();
    return out;
  };
  const auto pivot_consensus = by_chromosome(*pivot);
  const auto window_consensus = by_chromosome(*window);
  if (pivot_consensus != window_consensus) {
    fprintf(stderr, "MISMATCH: pivot and sliding-window consensus differ\n");
    exit(1);
  }
  uint64_t total_bases = 0;
  uint64_t differences = 0;
  for (const auto& [chrom, consensus] : window_consensus) {
    // The consensus starts at the chromosome's first covered position;
    // locate it by comparing against the reference greedily.
    const std::string& truth =
        lane.reference.chromosome(static_cast<int>(chrom)).sequence;
    // First covered position = min alignment position on this chromosome.
    int64_t start = -1;
    for (const genomics::Alignment& a : lane.alignments) {
      if (a.chromosome == chrom && (start < 0 || a.position < start)) {
        start = a.position;
      }
    }
    const std::vector<genomics::Snp> snps =
        genomics::FindSnps(truth, consensus, start);
    total_bases += consensus.size();
    differences += snps.size();
  }
  printf("validation: pivot == sliding window; %llu consensus bases, "
         "%llu residual differences vs reference (%.3f%%)\n",
         static_cast<unsigned long long>(total_bases),
         static_cast<unsigned long long>(differences),
         100.0 * differences / std::max<uint64_t>(1, total_bases));
  printf("\nPaper shape check: the pivot plan's huge intermediate makes it "
         "impractical; the ordered sliding-window UDA streams the same "
         "result far faster.\n");
}

}  // namespace
}  // namespace htg::bench

int main() {
  htg::bench::Run();
  return 0;
}
