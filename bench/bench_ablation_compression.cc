// Ablation (google-benchmark): row-codec and page-compression throughput
// and effectiveness across NONE/ROW/PAGE, on the two data regimes of the
// paper's storage study (repetitive DGE tags vs unique re-sequencing
// reads). Complements Tables 1/2 with the CPU-side cost of each level.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/random.h"
#include "storage/heap_table.h"
#include "storage/page.h"
#include "storage/row_codec.h"

namespace htg::storage {
namespace {

Schema ReadSchema() {
  Schema schema;
  schema.AddColumn({.name = "r_id", .type = DataType::kInt64});
  schema.AddColumn({.name = "tile", .type = DataType::kInt32});
  schema.AddColumn({.name = "seq", .type = DataType::kString});
  schema.AddColumn({.name = "qual", .type = DataType::kString});
  return schema;
}

std::vector<Row> MakeRows(int n, bool repetitive) {
  Random rng(131);
  std::vector<std::string> tag_pool;
  for (int i = 0; i < 50; ++i) {
    std::string tag;
    for (int b = 0; b < 36; ++b) tag.push_back("ACGT"[rng.Uniform(4)]);
    tag_pool.push_back(std::move(tag));
  }
  std::vector<Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::string seq;
    if (repetitive) {
      seq = tag_pool[rng.Zipf(tag_pool.size(), 1.2)];
    } else {
      for (int b = 0; b < 36; ++b) seq.push_back("ACGT"[rng.Uniform(4)]);
    }
    std::string qual;
    for (int b = 0; b < 36; ++b) {
      qual.push_back(static_cast<char>('!' + 20 + rng.Uniform(20)));
    }
    rows.push_back(Row{Value::Int64(i), Value::Int32(i % 300),
                       Value::String(std::move(seq)),
                       Value::String(std::move(qual))});
  }
  return rows;
}

void BM_EncodeRow(benchmark::State& state) {
  const Schema schema = ReadSchema();
  const Compression mode = static_cast<Compression>(state.range(0));
  const std::vector<Row> rows = MakeRows(1000, false);
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    std::string out;
    bench::CheckOk(EncodeRow(schema, rows[i % rows.size()], mode, &out),
                   "EncodeRow");
    bytes += out.size();
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.SetLabel(std::string(CompressionName(mode)));
}
BENCHMARK(BM_EncodeRow)->Arg(0)->Arg(1);

void BM_DecodeRow(benchmark::State& state) {
  const Schema schema = ReadSchema();
  const Compression mode = static_cast<Compression>(state.range(0));
  const std::vector<Row> rows = MakeRows(1000, false);
  std::vector<std::string> encoded;
  for (const Row& r : rows) {
    std::string out;
    bench::CheckOk(EncodeRow(schema, r, mode, &out), "EncodeRow");
    encoded.push_back(std::move(out));
  }
  size_t i = 0;
  for (auto _ : state) {
    Row row;
    bench::CheckOk(
        DecodeRow(schema, mode, Slice(encoded[i % encoded.size()]), &row),
        "DecodeRow");
    benchmark::DoNotOptimize(row);
    ++i;
  }
  state.SetLabel(std::string(CompressionName(mode)));
}
BENCHMARK(BM_DecodeRow)->Arg(0)->Arg(1);

// Full page build+scan cycle per mode and regime; reports achieved
// compression ratio as a counter.
void BM_PageCycle(benchmark::State& state) {
  const Schema schema = ReadSchema();
  const Compression mode = static_cast<Compression>(state.range(0));
  const bool repetitive = state.range(1) == 1;
  const std::vector<Row> rows = MakeRows(80, repetitive);
  double ratio = 0;
  for (auto _ : state) {
    PageBuilder builder(&schema, mode);
    size_t raw = 0;
    for (const Row& r : rows) {
      bench::CheckOk(builder.Add(r), "PageBuilder::Add");
    }
    raw = builder.raw_bytes();
    const std::string page = builder.Finish();
    ratio = static_cast<double>(page.size()) / raw;
    PageReader reader(&schema, Slice(page));
    bench::CheckOk(reader.Init(), "PageReader::Init");
    Row row;
    int count = 0;
    while (reader.Next(&row)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["compressed_ratio"] = ratio;
  state.SetLabel(std::string(CompressionName(mode)) +
                 (repetitive ? "/dge" : "/unique"));
}
BENCHMARK(BM_PageCycle)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1});

// Insert+scan throughput of a heap table per compression mode.
void BM_HeapInsertScan(benchmark::State& state) {
  const Compression mode = static_cast<Compression>(state.range(0));
  const std::vector<Row> rows = MakeRows(2000, true);
  for (auto _ : state) {
    HeapTable table(ReadSchema(), mode);
    for (const Row& r : rows) bench::CheckOk(table.Insert(r), "Insert");
    auto iter = table.NewScan();
    Row row;
    int count = 0;
    while (iter->Next(&row)) ++count;
    if (count != static_cast<int>(rows.size())) state.SkipWithError("lost rows");
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows.size()));
  state.SetLabel(std::string(CompressionName(mode)));
}
BENCHMARK(BM_HeapInsertScan)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace htg::storage

BENCHMARK_MAIN();
